#include "tmio/ftio.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace iobts::tmio {

namespace {

bool isPowerOfTwo(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace

void fftRadix2(std::vector<std::complex<double>>& data) {
  const std::size_t n = data.size();
  IOBTS_CHECK(isPowerOfTwo(n), "FFT size must be a power of two");
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = data[i + j];
        const std::complex<double> v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<double> powerSpectrum(const std::vector<double>& samples) {
  IOBTS_CHECK(isPowerOfTwo(samples.size()), "size must be a power of two");
  std::vector<std::complex<double>> buffer(samples.begin(), samples.end());
  fftRadix2(buffer);
  std::vector<double> power(samples.size() / 2 + 1);
  for (std::size_t k = 0; k < power.size(); ++k) {
    power[k] = std::norm(buffer[k]);
  }
  return power;
}

std::vector<double> autocorrelation(const std::vector<double>& samples) {
  IOBTS_CHECK(isPowerOfTwo(samples.size()), "size must be a power of two");
  const std::size_t n = samples.size();
  std::vector<std::complex<double>> buffer(samples.begin(), samples.end());
  fftRadix2(buffer);
  for (auto& x : buffer) x = std::norm(x);  // |X|^2
  // Inverse FFT via conjugation: ifft(x) = conj(fft(conj(x))) / n.
  for (auto& x : buffer) x = std::conj(x);
  fftRadix2(buffer);
  std::vector<double> r(n);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = buffer[i].real() / static_cast<double>(n);
  }
  return r;
}

FtioAnalyzer::FtioAnalyzer(Config config) : config_(config) {
  IOBTS_CHECK(isPowerOfTwo(config_.bins) && config_.bins >= 8,
              "bins must be a power of two >= 8");
  IOBTS_CHECK(config_.min_confidence > 0.0 && config_.min_confidence <= 1.0,
              "min_confidence must be in (0, 1]");
  IOBTS_CHECK(config_.min_cycles >= 1, "min_cycles must be >= 1");
}

PeriodicityResult FtioAnalyzer::analyzeSamples(std::vector<double> samples,
                                               double t0, double t1) const {
  PeriodicityResult result;
  result.window_start = t0;
  result.window_end = t1;

  const std::size_t n = samples.size();
  // Remove DC so trend energy does not swamp the spectrum.
  double mean = 0.0;
  for (const double s : samples) mean += s;
  mean /= static_cast<double>(n);
  bool any_signal = false;
  for (double& s : samples) {
    s -= mean;
    any_signal = any_signal || std::fabs(s) > 1e-12;
  }
  if (!any_signal) return result;  // flat signal: aperiodic

  // Hann window tempers spectral leakage from the finite window.
  for (std::size_t i = 0; i < n; ++i) {
    const double w = 0.5 - 0.5 * std::cos(2.0 * std::numbers::pi *
                                          static_cast<double>(i) /
                                          static_cast<double>(n - 1));
    samples[i] *= w;
  }

  result.spectrum = powerSpectrum(samples);

  // Dominant peak above the low-frequency guard band.
  const int k_min = config_.min_cycles;
  int k_star = 0;
  double total = 0.0;
  for (std::size_t k = static_cast<std::size_t>(k_min);
       k < result.spectrum.size(); ++k) {
    total += result.spectrum[k];
    if (k_star == 0 || result.spectrum[k] > result.spectrum[k_star]) {
      k_star = static_cast<int>(k);
    }
  }
  if (k_star == 0 || total <= 0.0) return result;

  // Peak energy including the two neighbouring bins (windowed peaks smear).
  double peak = result.spectrum[k_star];
  if (k_star - 1 >= k_min) peak += result.spectrum[k_star - 1];
  if (k_star + 1 < static_cast<int>(result.spectrum.size())) {
    peak += result.spectrum[k_star + 1];
  }

  result.dominant_bin = k_star;
  result.confidence = peak / total;
  result.frequency = static_cast<double>(k_star) / (t1 - t0);
  result.period = 1.0 / result.frequency;
  result.periodic = result.confidence >= config_.min_confidence;
  return result;
}

PeriodicityResult FtioAnalyzer::analyzeSeries(const StepSeries& signal,
                                              double t0, double t1) const {
  IOBTS_CHECK(t1 > t0, "analysis window must be non-empty");
  std::vector<double> samples(config_.bins);
  const double dt = (t1 - t0) / static_cast<double>(config_.bins);
  for (std::size_t i = 0; i < config_.bins; ++i) {
    // Mean of the bin, approximated by the step-function integral.
    const double lo = t0 + dt * static_cast<double>(i);
    samples[i] = signal.integrate(lo, lo + dt) / dt;
  }
  return analyzeSamples(std::move(samples), t0, t1);
}

PeriodicityResult FtioAnalyzer::analyzeEvents(
    const std::vector<double>& events) const {
  PeriodicityResult result;
  if (events.size() < 4) return result;
  const auto [lo_it, hi_it] = std::minmax_element(events.begin(), events.end());
  const double t0 = *lo_it;
  // Stretch the window slightly so the last event lands inside the grid.
  const double t1 = *hi_it + (*hi_it - t0) / static_cast<double>(config_.bins);
  if (t1 <= t0) return result;
  result.window_start = t0;
  result.window_end = t1;

  std::vector<double> samples(config_.bins, 0.0);
  const double dt = (t1 - t0) / static_cast<double>(config_.bins);
  for (const double t : events) {
    auto bin = static_cast<std::size_t>((t - t0) / dt);
    bin = std::min(bin, config_.bins - 1);
    samples[bin] += 1.0;
  }
  // Remove the mean so the autocorrelation floor sits near zero.
  double mean = 0.0;
  for (const double s : samples) mean += s;
  mean /= static_cast<double>(config_.bins);
  for (double& s : samples) s -= mean;

  const std::vector<double> r = autocorrelation(samples);
  if (r[0] <= 0.0) return result;

  // Every multiple of the period peaks almost equally high, so take the
  // *smallest* local-maximum lag within 85 % of the global peak -- that is
  // the fundamental. Only the first half of the lags is meaningful for a
  // circular autocorrelation.
  const std::size_t lag_min = 2;
  const std::size_t lag_max = config_.bins / 2;
  double r_max = 0.0;
  for (std::size_t lag = lag_min; lag < lag_max; ++lag) {
    r_max = std::max(r_max, r[lag]);
  }
  if (r_max <= 0.0) return result;
  std::size_t best_lag = 0;
  for (std::size_t lag = lag_min; lag < lag_max; ++lag) {
    const bool local_max = r[lag] >= r[lag - 1] && r[lag] >= r[lag + 1];
    if (local_max && r[lag] >= 0.85 * r_max) {
      best_lag = lag;
      break;
    }
  }
  if (best_lag == 0) return result;

  // Refine to the fundamental: a peak at k x period also appears at the
  // period itself; prefer the smallest sub-multiple whose autocorrelation
  // is still strong.
  for (std::size_t divisor = 8; divisor >= 2; --divisor) {
    const std::size_t candidate =
        (best_lag + divisor / 2) / divisor;  // rounded best_lag / divisor
    if (candidate < lag_min || candidate + 1 >= r.size()) continue;
    // Allow +-1 bin of quantization slack around the candidate lag.
    double local = r[candidate];
    local = std::max(local, r[candidate - 1]);
    local = std::max(local, r[candidate + 1]);
    if (local >= 0.7 * r[best_lag]) {
      std::size_t refined = candidate;
      if (r[candidate - 1] > r[refined]) refined = candidate - 1;
      if (r[candidate + 1] > r[refined]) refined = candidate + 1;
      best_lag = refined;
      break;
    }
  }

  result.confidence = std::max(0.0, r[best_lag] / r[0]);
  result.period = static_cast<double>(best_lag) * dt;
  result.frequency = 1.0 / result.period;
  result.dominant_bin = static_cast<int>(best_lag);
  result.periodic = result.confidence >= config_.min_confidence;
  return result;
}

double FtioAnalyzer::predictNext(const PeriodicityResult& result,
                                 double last_event) {
  IOBTS_CHECK(result.periodic && result.period > 0.0,
              "prediction needs a periodic result");
  return last_event + result.period;
}

}  // namespace iobts::tmio
