// Application-level region aggregation (paper Sec. IV-C, Eq. 3, Fig. 4).
//
// Given per-rank, per-phase intervals [ts_ij, te_ij) each carrying a value
// (required bandwidth B_ij, or throughput T_ij), compute the step function
//
//   B_r = sum of values whose interval contains the region start ts_r,
//
// where a new region starts at every interval start or end. The maximum of
// the series is the minimal application-level bandwidth such that no rank
// ever blocks in a matching wait.
#pragma once

#include <vector>

#include "util/stats.hpp"

namespace iobts::tmio {

struct Interval {
  double start = 0.0;
  double end = 0.0;
  double value = 0.0;
};

/// Sweep-line sum of overlapping intervals. The returned series has one
/// sample per region start (including a final 0 when all intervals closed).
/// Zero-length intervals contribute a region boundary but no area.
StepSeries sweepRegions(std::vector<Interval> intervals);

}  // namespace iobts::tmio
