// Bridge from the TMIO tracer to the observability plane.
//
// The tracer already computes the paper's quantities -- per-phase required
// bandwidth B_ij (Eq. 1), throughput T_ij (Eq. 2), the application-level
// series (Eq. 3) -- as record vectors. This bridge publishes them through
// the obs plane in two forms:
//
//   * exportTracerMetrics: deterministic counters/gauges/histograms in a
//     MetricsRegistry ("tmio.*" names), so a metrics dump carries the
//     bandwidth story next to the simulator's own counters;
//   * annotateAppRequired: the Eq. 3 application-level required-bandwidth
//     step series as Chrome-trace counter samples on the tmio track, so
//     Perfetto plots B(t) directly under the request journeys it explains.
//
// (The *live* per-phase B_req samples are emitted by the tracer itself at
// phase close -- "tmio.breq.write"/"tmio.breq.read" counters, one series
// per rank; this bridge handles the collection-time aggregates.)
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tmio/tracer.hpp"

namespace iobts::tmio {

/// Publish the tracer's aggregate bandwidth telemetry into `registry`:
/// record counts (tmio.phases / throughput_windows / limit_changes), and
/// per channel the phase count, required-bandwidth histogram
/// (tmio.<channel>.required_bw, decade buckets in bytes/s), phase-duration
/// histogram (tmio.<channel>.phase_seconds), last-phase B_req gauge, plus
/// the Sec. IV-C minimal application bandwidth (tmio.min_required_bw).
void exportTracerMetrics(const Tracer& tracer, obs::MetricsRegistry& registry);

/// Record the application-level required-bandwidth series (Eq. 3) of both
/// channels into `sink` as counter samples ("tmio.app.breq.write"/".read",
/// pid obs::track::kTmio, tid = channel index). Returns the number of
/// samples recorded.
std::size_t annotateAppRequired(const Tracer& tracer, obs::TraceSink& sink);

}  // namespace iobts::tmio
