#include "tmio/report.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace iobts::tmio {

namespace {
double aggregateRankSeconds(const mpisim::World& world) {
  double base = 0.0;
  for (int r = 0; r < world.config().ranks; ++r) {
    base += world.rankTimes(r).total();
  }
  return base;
}
}  // namespace

ExploitBreakdown exploitBreakdown(const Tracer& tracer,
                                  const mpisim::World& world) {
  const double base = aggregateRankSeconds(world);
  ExploitBreakdown out;
  if (base <= 0.0) return out;

  AsyncTimeSplit sum;
  for (int r = 0; r < world.config().ranks; ++r) {
    const AsyncTimeSplit& split = tracer.rankSplit(r);
    sum.sync_write += split.sync_write;
    sum.sync_read += split.sync_read;
    sum.write_lost += split.write_lost;
    sum.read_lost += split.read_lost;
    sum.write_exploit += split.write_exploit;
    sum.read_exploit += split.read_exploit;
  }
  const double pct = 100.0 / base;
  out.sync_write = sum.sync_write * pct;
  out.sync_read = sum.sync_read * pct;
  out.async_write_lost = sum.write_lost * pct;
  out.async_read_lost = sum.read_lost * pct;
  out.async_write_exploit = sum.write_exploit * pct;
  out.async_read_exploit = sum.read_exploit * pct;
  out.compute_io_free = std::max(
      0.0, 100.0 - out.sync_write - out.sync_read - out.async_write_lost -
               out.async_read_lost - out.async_write_exploit -
               out.async_read_exploit);
  return out;
}

VisibleBreakdown visibleBreakdown(const mpisim::World& world) {
  const double base = aggregateRankSeconds(world);
  VisibleBreakdown out;
  if (base <= 0.0) return out;
  double peri = 0.0;
  double post = 0.0;
  double visible = 0.0;
  for (int r = 0; r < world.config().ranks; ++r) {
    const mpisim::RankTimes& t = world.rankTimes(r);
    peri += t.overhead_peri;
    post += t.overhead_post;
    visible += t.sync_io + t.wait_blocked;
  }
  const double pct = 100.0 / base;
  out.overhead_peri = peri * pct;
  out.overhead_post = post * pct;
  out.visible_io = visible * pct;
  out.compute = std::max(
      0.0, 100.0 - out.overhead_peri - out.overhead_post - out.visible_io);
  return out;
}

RuntimeSummary runtimeSummary(const mpisim::World& world) {
  RuntimeSummary out;
  out.total = world.elapsed();
  double overhead = 0.0;
  for (int r = 0; r < world.config().ranks; ++r) {
    const mpisim::RankTimes& t = world.rankTimes(r);
    overhead += t.overhead_peri + t.overhead_post;
  }
  out.overhead = overhead / std::max(1, world.config().ranks);
  out.app = std::max(0.0, out.total - out.overhead);
  return out;
}

double asyncWriteExploitPercent(const Tracer& tracer,
                                const mpisim::World& world) {
  return exploitBreakdown(tracer, world).async_write_exploit;
}

}  // namespace iobts::tmio
