#include "tmio/publisher.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "util/check.hpp"
#include "util/log.hpp"

namespace iobts::tmio {

// ---------------------------------------------------------------------------
// JsonlFileSink

JsonlFileSink::JsonlFileSink(const std::string& path) : out_(path) {
  IOBTS_CHECK(out_.is_open(), "cannot open '" + path + "'");
}

void JsonlFileSink::publish(const Json& record) {
  out_ << record.dump() << '\n';
}

void JsonlFileSink::flush() { out_.flush(); }

// ---------------------------------------------------------------------------
// TcpJsonlSink

namespace {

void sendAll(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, 0);
    IOBTS_CHECK(n > 0, "TCP send failed");
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

TcpJsonlSink::TcpJsonlSink(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  IOBTS_CHECK(fd_ >= 0, "cannot create socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  IOBTS_CHECK(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
              "bad host address '" + host + "'");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    IOBTS_CHECK(false, "cannot connect to " + host + ":" +
                           std::to_string(port));
  }
}

TcpJsonlSink::~TcpJsonlSink() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpJsonlSink::publish(const Json& record) {
  const std::string line = record.dump() + "\n";
  sendAll(fd_, line.data(), line.size());
}

// ---------------------------------------------------------------------------
// MetricsPublisher

void MetricsPublisher::addSink(std::unique_ptr<MetricsSink> sink) {
  IOBTS_CHECK(sink != nullptr, "null sink");
  sinks_.push_back(std::move(sink));
}

void MetricsPublisher::publish(const Json& record) {
  for (const auto& sink : sinks_) sink->publish(record);
}

void MetricsPublisher::flush() {
  for (const auto& sink : sinks_) sink->flush();
}

// ---------------------------------------------------------------------------
// TcpJsonlServer

TcpJsonlServer::TcpJsonlServer() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  IOBTS_CHECK(listen_fd_ >= 0, "cannot create listen socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  IOBTS_CHECK(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0,
              "bind failed");
  socklen_t len = sizeof(addr);
  IOBTS_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len) == 0,
              "getsockname failed");
  port_ = ntohs(addr.sin_port);
  IOBTS_CHECK(::listen(listen_fd_, 1) == 0, "listen failed");
  reader_ = std::thread([this] { serve(); });
}

TcpJsonlServer::~TcpJsonlServer() { stop(); }

void TcpJsonlServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  // Closing the listen socket unblocks accept(); an in-flight recv ends when
  // the client disconnects (sinks are destroyed before the server in tests).
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (reader_.joinable()) reader_.join();
}

std::vector<std::string> TcpJsonlServer::lines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

bool TcpJsonlServer::waitForLines(std::size_t n, int timeout_ms) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (lines_.size() >= n) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_.size() >= n;
}

void TcpJsonlServer::serve() {
  const int client = ::accept(listen_fd_, nullptr, nullptr);
  if (client < 0) return;  // stopped before a client connected
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(client, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    std::lock_guard<std::mutex> lock(mutex_);
    for (ssize_t i = 0; i < n; ++i) {
      if (buffer[i] == '\n') {
        lines_.push_back(partial_);
        partial_.clear();
      } else {
        partial_.push_back(buffer[i]);
      }
    }
  }
  ::close(client);
}

}  // namespace iobts::tmio
