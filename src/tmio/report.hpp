// Aggregated views of a traced run -- the quantities plotted in the paper's
// figures.
//
// All percentage breakdowns use the aggregate rank-time base
// sum_i total_i (rank-seconds), matching the paper's per-run stacked bars.
#pragma once

#include "mpisim/world.hpp"
#include "tmio/tracer.hpp"

namespace iobts::tmio {

/// Fig. 7 / Fig. 11 segments (percent of aggregate rank time).
struct ExploitBreakdown {
  double sync_write = 0.0;
  double sync_read = 0.0;
  double async_write_lost = 0.0;
  double async_read_lost = 0.0;
  double async_write_exploit = 0.0;
  double async_read_exploit = 0.0;
  double compute_io_free = 0.0;  // remainder (compute + comm, no I/O)
};

/// Fig. 6 segments (percent of aggregate rank time, overhead included).
struct VisibleBreakdown {
  double overhead_post = 0.0;
  double overhead_peri = 0.0;
  double visible_io = 0.0;  // sync I/O + async wait-blocked time
  double compute = 0.0;     // everything else (incl. hidden async I/O)
};

/// Fig. 5 rows.
struct RuntimeSummary {
  Seconds total = 0.0;     // wall (virtual) time of the whole run
  Seconds overhead = 0.0;  // mean per-rank tracer overhead (peri + post)
  Seconds app = 0.0;       // total - overhead
};

ExploitBreakdown exploitBreakdown(const Tracer& tracer,
                                  const mpisim::World& world);

VisibleBreakdown visibleBreakdown(const mpisim::World& world);

RuntimeSummary runtimeSummary(const mpisim::World& world);

/// Percentage of aggregate rank time spent with async writes truly hidden
/// (the "async write exploit" headline: 57 % vs 3.9 % in Fig. 10).
double asyncWriteExploitPercent(const Tracer& tracer,
                                const mpisim::World& world);

}  // namespace iobts::tmio
