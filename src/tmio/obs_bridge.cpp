#include "tmio/obs_bridge.hpp"

#include <string>
#include <vector>

namespace iobts::tmio {

namespace {

/// Decade buckets spanning the bandwidths the paper cares about
/// (MB/s .. TB/s), in bytes/s.
const std::vector<double>& bandwidthBounds() {
  static const std::vector<double> bounds{1e6, 1e7, 1e8, 1e9,
                                          1e10, 1e11, 1e12};
  return bounds;
}

/// Phase windows range from sub-millisecond verify phases to hundreds of
/// seconds of compute; reuse the span-stat decades.
const std::vector<double>& secondsBounds() {
  static const std::vector<double> bounds(obs::kSpanStatBounds,
                                          obs::kSpanStatBounds + 8);
  return bounds;
}

}  // namespace

void exportTracerMetrics(const Tracer& tracer,
                         obs::MetricsRegistry& registry) {
  registry.addCounter("tmio.phases", tracer.phaseRecords().size());
  registry.addCounter("tmio.throughput_windows",
                      tracer.throughputRecords().size());
  registry.addCounter("tmio.limit_changes", tracer.limitChanges().size());

  double last_required[pfs::kChannels] = {};
  bool saw[pfs::kChannels] = {};
  for (const PhaseRecord& p : tracer.phaseRecords()) {
    const int c = static_cast<int>(p.channel);
    const std::string prefix =
        std::string("tmio.") + pfs::channelName(p.channel);
    registry.addCounter(prefix + ".phases", 1);
    registry.observe(prefix + ".required_bw", p.required, bandwidthBounds());
    registry.observe(prefix + ".phase_seconds", p.te - p.ts, secondsBounds());
    last_required[c] = p.required;
    saw[c] = true;
  }
  for (int c = 0; c < static_cast<int>(pfs::kChannels); ++c) {
    if (!saw[c]) continue;
    registry.setGauge(std::string("tmio.") +
                          pfs::channelName(static_cast<pfs::Channel>(c)) +
                          ".required_bw.last",
                      last_required[c]);
  }
  registry.setGauge("tmio.min_required_bw",
                    tracer.minimalRequiredBandwidth());
}

std::size_t annotateAppRequired(const Tracer& tracer, obs::TraceSink& sink) {
  std::size_t samples = 0;
  for (int c = 0; c < static_cast<int>(pfs::kChannels); ++c) {
    const pfs::Channel channel = static_cast<pfs::Channel>(c);
    const char* const name = channel == pfs::Channel::Read
                                 ? "tmio.app.breq.read"
                                 : "tmio.app.breq.write";
    // Bind the by-value series before iterating: points() returns a
    // reference into it, which would dangle on a temporary.
    const StepSeries series = tracer.appRequiredSeries(channel);
    for (const auto& [t, v] : series.points()) {
      sink.counter("tmio", name, obs::track::kTmio,
                   static_cast<std::uint32_t>(c), t, v);
      ++samples;
    }
  }
  return samples;
}

}  // namespace iobts::tmio
