// Online metric streaming (paper Sec. IV-D: "aside from writing the data
// out, the library can also send the data via TCP (via ZeroMQ) to avoid
// creating a file").
//
// The tracer can publish every record the moment it is produced -- phase
// records at the matching wait, throughput records when the queue drains,
// limit changes when a strategy fires -- to any number of sinks:
//
//   * JsonlFileSink  -- append JSON Lines to a file;
//   * MemorySink     -- retain records in memory (tests, in-process
//                       consumers such as an I/O scheduler);
//   * TcpJsonlSink   -- a real TCP client streaming JSONL over a socket
//                       (the ZeroMQ analog; plain sockets keep the library
//                       dependency-free).
//
// TcpJsonlServer is a minimal loopback receiver used by tests and the
// online-consumer example.
#pragma once

#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"

namespace iobts::tmio {

class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  /// Deliver one record. Called inline from the tracer's hook path; sinks
  /// must be cheap or buffer internally.
  virtual void publish(const Json& record) = 0;
  virtual void flush() {}
};

/// Appends one compact JSON object per line.
class JsonlFileSink final : public MetricsSink {
 public:
  explicit JsonlFileSink(const std::string& path);
  void publish(const Json& record) override;
  void flush() override;

 private:
  std::ofstream out_;
};

/// Retains all records (tests / in-process consumers).
class MemorySink final : public MetricsSink {
 public:
  void publish(const Json& record) override { records_.push_back(record); }
  const std::vector<Json>& records() const noexcept { return records_; }

 private:
  std::vector<Json> records_;
};

/// Streams JSONL over a connected TCP socket (blocking writes; loopback or
/// LAN-grade links). Throws CheckError if the connection fails.
class TcpJsonlSink final : public MetricsSink {
 public:
  TcpJsonlSink(const std::string& host, int port);
  ~TcpJsonlSink() override;
  void publish(const Json& record) override;

 private:
  int fd_ = -1;
};

/// Fan-out to any number of sinks.
class MetricsPublisher {
 public:
  void addSink(std::unique_ptr<MetricsSink> sink);
  std::size_t sinkCount() const noexcept { return sinks_.size(); }

  void publish(const Json& record);
  void flush();

 private:
  std::vector<std::unique_ptr<MetricsSink>> sinks_;
};

/// Minimal single-connection JSONL receiver on 127.0.0.1 (for tests and the
/// online-consumer demo). Accepts one client and collects complete lines.
class TcpJsonlServer {
 public:
  TcpJsonlServer();
  ~TcpJsonlServer();
  TcpJsonlServer(const TcpJsonlServer&) = delete;
  TcpJsonlServer& operator=(const TcpJsonlServer&) = delete;

  int port() const noexcept { return port_; }

  /// Stop accepting/reading and join the reader thread.
  void stop();

  /// Lines received so far (thread-safe snapshot).
  std::vector<std::string> lines() const;

  /// Block until at least `n` lines arrived or `timeout_ms` passed; returns
  /// whether the count was reached.
  bool waitForLines(std::size_t n, int timeout_ms = 2000) const;

 private:
  void serve();

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread reader_;
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
  std::string partial_;
  bool stopping_ = false;
};

}  // namespace iobts::tmio
