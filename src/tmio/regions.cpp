#include "tmio/regions.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace iobts::tmio {

StepSeries sweepRegions(std::vector<Interval> intervals) {
  StepSeries series;
  if (intervals.empty()) return series;

  struct Breakpoint {
    double t;
    double delta;  // +value at start, -value at end
  };
  std::vector<Breakpoint> points;
  points.reserve(intervals.size() * 2);
  for (const Interval& iv : intervals) {
    IOBTS_CHECK(iv.end >= iv.start, "interval must be ordered");
    if (iv.end == iv.start) continue;  // zero-length: no contribution
    points.push_back({iv.start, iv.value});
    points.push_back({iv.end, -iv.value});
  }
  if (points.empty()) return series;
  std::sort(points.begin(), points.end(),
            [](const Breakpoint& a, const Breakpoint& b) { return a.t < b.t; });

  double running = 0.0;
  std::size_t i = 0;
  while (i < points.size()) {
    const double t = points[i].t;
    // Fold all breakpoints at the same instant into one region boundary.
    while (i < points.size() && points[i].t == t) {
      running += points[i].delta;
      ++i;
    }
    // Snap float residue to zero so the final region reads exactly 0.
    if (std::abs(running) < 1e-9) running = 0.0;
    series.add(t, running);
  }
  return series;
}

}  // namespace iobts::tmio
