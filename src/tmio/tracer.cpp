#include "tmio/tracer.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace iobts::tmio {

namespace {

Json toJson(const PhaseRecord& p) {
  JsonObject obj;
  obj["kind"] = "phase";
  obj["rank"] = p.rank;
  obj["phase"] = p.phase;
  obj["channel"] = pfs::channelName(p.channel);
  obj["ts"] = p.ts;
  obj["te"] = p.te;
  obj["bytes"] = static_cast<double>(p.bytes);
  obj["requests"] = p.requests;
  obj["B"] = p.required;
  if (p.applied_limit) obj["B_L"] = *p.applied_limit;
  return Json(obj);
}

Json toJson(const ThroughputRecord& t) {
  JsonObject obj;
  obj["kind"] = "throughput";
  obj["rank"] = t.rank;
  obj["channel"] = pfs::channelName(t.channel);
  obj["start"] = t.start;
  obj["end"] = t.end;
  obj["bytes"] = static_cast<double>(t.bytes);
  obj["T"] = t.throughput;
  return Json(obj);
}

Json toJson(const LimitChange& c) {
  JsonObject obj;
  obj["kind"] = "limit";
  obj["rank"] = c.rank;
  obj["time"] = c.time;
  if (c.limit) obj["limit"] = *c.limit;
  return Json(obj);
}

// Guard for degenerate windows (wait reached in the same instant as submit):
// the required bandwidth is effectively unbounded; clamp the window instead
// of dividing by zero.
constexpr double kMinWindow = 1e-9;

int treeStages(int ranks) noexcept {
  int stages = 0;
  int reach = 1;
  while (reach < ranks) {
    reach *= 2;
    ++stages;
  }
  return stages;
}
}  // namespace

/// Requests of one in-flight bandwidth phase.
struct Tracer::OpenPhase {
  int index = -1;
  pfs::Channel channel = pfs::Channel::Write;
  sim::Time ts = sim::kNoTime;
  Bytes bytes = 0;
  std::optional<BytesPerSec> applied_limit{};
  struct Req {
    std::uint64_t id;
    sim::Time ts;
    Bytes bytes;
  };
  std::vector<Req> requests;
  std::size_t waits_pending = 0;  // requests whose wait has not been reached
  bool closed = false;            // B computed (FirstWait mode)
};

struct Tracer::RankState {
  explicit RankState(const TracerConfig& config) {
    for (auto& s : strategy) s = makeStrategy(config.strategy, config.params);
  }

  // One strategy/limit per channel: read and write phases have different
  // overlap windows, so a shared limit would oscillate between them.
  std::unique_ptr<LimitStrategy> strategy[pfs::kChannels];
  std::optional<BytesPerSec> current_limit[pfs::kChannels]{};

  // Bandwidth-monitoring queue.
  std::unique_ptr<OpenPhase> open_phase;
  std::deque<std::unique_ptr<OpenPhase>> draining_phases;  // closed, waits pending
  int next_phase_index = 0;

  // Throughput-monitoring queue (Eq. 2 window).
  int tput_outstanding = 0;
  sim::Time tput_start = sim::kNoTime;
  Bytes tput_bytes = 0;
  pfs::Channel tput_channel = pfs::Channel::Write;

  // Per-request bookkeeping for exploit/lost classification.
  struct LiveRequest {
    sim::Time io_start = sim::kNoTime;
    sim::Time io_end = sim::kNoTime;
    bool completed = false;
  };
  std::map<std::uint64_t, LiveRequest> live;

  AsyncTimeSplit split;
  std::size_t intercepted_calls = 0;
};

Tracer::Tracer(TracerConfig config) : config_(config) {}

Tracer::~Tracer() = default;

void Tracer::attach(mpisim::World& world) {
  IOBTS_CHECK(world.hooks() == this,
              "tracer must be passed as the world's hooks");
  world_ = &world;
  ranks_.clear();
  ranks_.reserve(static_cast<std::size_t>(world.config().ranks));
  for (int r = 0; r < world.config().ranks; ++r) {
    ranks_.push_back(std::make_unique<RankState>(config_));
  }
  if (obs::TraceSink* const sink = obs::traceSink()) {
    sink->setProcessName(obs::track::kTmio, "tmio tracer (B_req per phase)");
  }
}

Tracer::RankState& Tracer::state(int rank) {
  IOBTS_CHECK(world_ != nullptr, "tracer not attached to a world");
  IOBTS_CHECK(rank >= 0 && rank < static_cast<int>(ranks_.size()),
              "rank out of range");
  return *ranks_[rank];
}

sim::Time Tracer::now() const { return world_->sim().now(); }

Seconds Tracer::interceptOverhead() const {
  return config_.overhead.intercept_per_call;
}

void Tracer::onSubmit(const mpisim::RequestInfo& info) {
  RankState& rs = state(info.rank);
  ++rs.intercepted_calls;
  if (!mpisim::isAsync(info.op)) return;

  // Bandwidth queue: open a phase if none is accepting requests.
  if (!rs.open_phase) {
    rs.open_phase = std::make_unique<OpenPhase>();
    rs.open_phase->index = rs.next_phase_index++;
    rs.open_phase->channel = mpisim::channelOf(info.op);
    rs.open_phase->ts = info.submit_time;
    rs.open_phase->applied_limit =
        rs.current_limit[static_cast<int>(mpisim::channelOf(info.op))];
  }
  OpenPhase& phase = *rs.open_phase;
  phase.bytes += info.bytes;
  phase.requests.push_back({info.id, info.submit_time, info.bytes});
  ++phase.waits_pending;

  // Throughput queue: window opens with the first outstanding request.
  if (rs.tput_outstanding == 0) {
    rs.tput_start = info.submit_time;
    rs.tput_bytes = 0;
    rs.tput_channel = mpisim::channelOf(info.op);
  }
  ++rs.tput_outstanding;
  rs.tput_bytes += info.bytes;

  rs.live.emplace(info.id, RankState::LiveRequest{});
}

void Tracer::onComplete(const mpisim::RequestInfo& info) {
  if (!mpisim::isAsync(info.op)) return;
  RankState& rs = state(info.rank);

  const auto it = rs.live.find(info.id);
  if (it != rs.live.end()) {
    it->second.io_start = info.io_start;
    it->second.io_end = info.io_end;
    it->second.completed = true;
  }

  // Throughput queue drains on completion.
  IOBTS_CHECK(rs.tput_outstanding > 0, "completion without submission");
  if (--rs.tput_outstanding == 0) {
    ThroughputRecord record;
    record.rank = info.rank;
    record.channel = rs.tput_channel;
    record.start = rs.tput_start;
    record.end = info.io_end;
    record.bytes = rs.tput_bytes;
    const double window = std::max(kMinWindow, record.end - record.start);
    record.throughput = static_cast<double>(record.bytes) / window;
    throughputs_.push_back(record);
    if (config_.publisher) config_.publisher->publish(toJson(record));
  }
}

void Tracer::closePhase(RankState& rs, OpenPhase& phase, int rank) {
  phase.closed = true;
  const sim::Time te = now();

  PhaseRecord record;
  record.rank = rank;
  record.phase = phase.index;
  record.channel = phase.channel;
  record.ts = phase.ts;
  record.te = te;
  record.bytes = phase.bytes;
  record.requests = static_cast<int>(phase.requests.size());
  record.applied_limit = phase.applied_limit;

  // Eq. 1, summed over the phase's requests (the paper's choice: the sum
  // yields higher B_ij than the average).
  double required = 0.0;
  for (const OpenPhase::Req& req : phase.requests) {
    const double window = std::max(kMinWindow, te - req.ts);
    required += static_cast<double>(req.bytes) / window;
  }
  record.required = required;

  // Live B_req telemetry: each closed phase publishes its required
  // bandwidth (Eq. 1) as a counter sample at the phase end, one series per
  // (channel, rank) -- the online signal an FTIO-style consumer would read.
  if (obs::TraceSink* const sink = obs::traceSink()) {
    sink->counter("tmio",
                  phase.channel == pfs::Channel::Read ? "tmio.breq.read"
                                                      : "tmio.breq.write",
                  obs::track::kTmio, static_cast<std::uint32_t>(rank), te,
                  record.required);
  }

  // Strategy: limit for the next phase on this channel (Sec. IV-B).
  const int chan = static_cast<int>(phase.channel);
  const std::optional<BytesPerSec> limit =
      rs.strategy[chan]->nextLimit(required);
  phases_.push_back(record);
  if (config_.publisher) config_.publisher->publish(toJson(record));

  if (config_.apply_limits && limit.has_value()) {
    rs.current_limit[chan] = limit;
  }
}

void Tracer::onWaitEnter(const mpisim::RequestInfo& info) {
  RankState& rs = state(info.rank);
  ++rs.intercepted_calls;
  if (!mpisim::isAsync(info.op)) return;

  auto handle_phase = [&](OpenPhase& phase) -> bool {
    auto req_it = std::find_if(
        phase.requests.begin(), phase.requests.end(),
        [&](const OpenPhase::Req& r) { return r.id == info.id; });
    if (req_it == phase.requests.end()) return false;

    const bool is_first_wait = phase.waits_pending ==
                               phase.requests.size();
    --phase.waits_pending;
    const bool should_close =
        !phase.closed &&
        ((config_.phase_end == PhaseEndMode::FirstWait && is_first_wait) ||
         (config_.phase_end == PhaseEndMode::LastWait &&
          phase.waits_pending == 0));
    if (should_close) {
      closePhase(rs, phase, info.rank);
      const int chan = static_cast<int>(phase.channel);
      if (config_.apply_limits && rs.current_limit[chan].has_value()) {
        // Push the new limit to the MPI extension now -- it governs the next
        // phase's I/O on this channel (Sec. IV-B).
        world_->setRankLimit(info.rank, phase.channel,
                             rs.current_limit[chan]);
        limit_changes_.push_back(
            LimitChange{info.rank, now(), rs.current_limit[chan]});
        if (config_.publisher) {
          config_.publisher->publish(toJson(limit_changes_.back()));
        }
      }
    }
    return true;
  };

  if (rs.open_phase && handle_phase(*rs.open_phase)) {
    if (rs.open_phase->closed) {
      // Phase is measured; keep it around only while waits are pending.
      if (rs.open_phase->waits_pending == 0) {
        rs.open_phase.reset();
      } else {
        rs.draining_phases.push_back(std::move(rs.open_phase));
      }
    }
    return;
  }
  for (auto it = rs.draining_phases.begin(); it != rs.draining_phases.end();
       ++it) {
    if (handle_phase(**it)) {
      if ((*it)->waits_pending == 0) rs.draining_phases.erase(it);
      return;
    }
  }
  // A wait for a request we never saw submitted (e.g. tracer attached late):
  // ignore, like PMPI tools do.
}

void Tracer::onWaitExit(const mpisim::RequestInfo& info, Seconds blocked) {
  if (!mpisim::isAsync(info.op)) return;
  RankState& rs = state(info.rank);
  const bool write = mpisim::isWrite(info.op);
  if (write) {
    rs.split.write_lost += blocked;
  } else {
    rs.split.read_lost += blocked;
  }

  const auto it = rs.live.find(info.id);
  if (it != rs.live.end()) {
    const RankState::LiveRequest& live = it->second;
    if (live.completed) {
      const sim::Time wait_reached = now() - blocked;
      const Seconds io_time = live.io_end - live.io_start;
      const Seconds visible = std::max(0.0, live.io_end - wait_reached);
      const Seconds exploited = std::max(0.0, io_time - visible);
      if (write) {
        rs.split.write_exploit += exploited;
      } else {
        rs.split.read_exploit += exploited;
      }
    }
    rs.live.erase(it);
  }
}

void Tracer::onSyncStart(const mpisim::RequestInfo& info) {
  RankState& rs = state(info.rank);
  ++rs.intercepted_calls;
}

void Tracer::onSyncEnd(const mpisim::RequestInfo& info) {
  RankState& rs = state(info.rank);
  const Seconds duration = now() - info.submit_time;
  if (mpisim::isWrite(info.op)) {
    rs.split.sync_write += duration;
  } else {
    rs.split.sync_read += duration;
  }
}

Seconds Tracer::onFinalize(int rank) {
  RankState& rs = state(rank);
  // Requests drained without a wait: their I/O ran entirely in the
  // background; count it as exploited time.
  for (const auto& [id, live] : rs.live) {
    (void)id;
    if (live.completed) {
      rs.split.write_exploit += live.io_end - live.io_start;
    }
  }
  rs.live.clear();

  const OverheadModel& model = config_.overhead;
  const int ranks = world_->config().ranks;
  const double records =
      static_cast<double>(rs.intercepted_calls);
  return model.finalize_base +
         model.finalize_per_stage * treeStages(ranks) +
         model.finalize_per_record * records +
         model.finalize_per_rank * static_cast<double>(ranks);
}

sim::Time Tracer::firstLimitTime() const noexcept {
  sim::Time first = sim::kNoTime;
  for (const LimitChange& change : limit_changes_) {
    if (first < 0.0 || change.time < first) first = change.time;
  }
  return first;
}

const AsyncTimeSplit& Tracer::rankSplit(int rank) const {
  IOBTS_CHECK(rank >= 0 && rank < static_cast<int>(ranks_.size()),
              "rank out of range");
  return ranks_[rank]->split;
}

StepSeries Tracer::appRequiredSeries(
    std::optional<pfs::Channel> channel) const {
  std::vector<Interval> intervals;
  intervals.reserve(phases_.size());
  for (const PhaseRecord& p : phases_) {
    if (channel && p.channel != *channel) continue;
    intervals.push_back({p.ts, p.te, p.required});
  }
  return sweepRegions(std::move(intervals));
}

StepSeries Tracer::appThroughputSeries(
    std::optional<pfs::Channel> channel) const {
  std::vector<Interval> intervals;
  intervals.reserve(throughputs_.size());
  for (const ThroughputRecord& t : throughputs_) {
    if (channel && t.channel != *channel) continue;
    intervals.push_back({t.start, t.end, t.throughput});
  }
  return sweepRegions(std::move(intervals));
}

StepSeries Tracer::appLimitSeries(std::optional<pfs::Channel> channel) const {
  std::vector<Interval> intervals;
  for (const PhaseRecord& p : phases_) {
    if (channel && p.channel != *channel) continue;
    if (!p.applied_limit) continue;
    intervals.push_back({p.ts, p.te, *p.applied_limit});
  }
  return sweepRegions(std::move(intervals));
}

BytesPerSec Tracer::minimalRequiredBandwidth() const {
  return appRequiredSeries().maxValue();
}

void Tracer::writeJsonl(const std::string& path) const {
  std::ofstream out(path);
  IOBTS_CHECK(out.is_open(), "cannot open '" + path + "'");
  for (const PhaseRecord& p : phases_) out << toJson(p).dump() << '\n';
  for (const ThroughputRecord& t : throughputs_) {
    out << toJson(t).dump() << '\n';
  }
  for (const LimitChange& c : limit_changes_) out << toJson(c).dump() << '\n';
}

void Tracer::writeCsv(const std::string& prefix) const {
  {
    CsvWriter csv(prefix + "_phases.csv");
    csv.header({"rank", "phase", "channel", "ts", "te", "bytes", "requests",
                "B", "B_L"});
    for (const PhaseRecord& p : phases_) {
      csv.row({std::to_string(p.rank), std::to_string(p.phase),
               pfs::channelName(p.channel), std::to_string(p.ts),
               std::to_string(p.te), std::to_string(p.bytes),
               std::to_string(p.requests), std::to_string(p.required),
               p.applied_limit ? std::to_string(*p.applied_limit) : ""});
    }
  }
  {
    CsvWriter csv(prefix + "_throughput.csv");
    csv.header({"rank", "channel", "start", "end", "bytes", "T"});
    for (const ThroughputRecord& t : throughputs_) {
      csv.row({std::to_string(t.rank), pfs::channelName(t.channel),
               std::to_string(t.start), std::to_string(t.end),
               std::to_string(t.bytes), std::to_string(t.throughput)});
    }
  }
}

}  // namespace iobts::tmio
