// FTIO -- frequency-technique detection of periodic I/O (the paper's
// companion tool [72], used together with TMIO: "the tool has been recently
// used together with FTIO to predict online or detect offline the I/O
// phases of an application").
//
// Given a bandwidth-over-time signal (e.g. the tracer's application-level
// throughput series) or a list of I/O phase start times, FTIO
//
//   1. resamples the signal onto a power-of-two grid,
//   2. removes the DC component and applies a Hann window,
//   3. runs an own radix-2 FFT and inspects the power spectrum,
//   4. reports the dominant frequency with a confidence score (the share of
//      non-DC spectral energy concentrated around the dominant peak).
//
// The result drives the predictive use cases the paper sketches: knowing
// the I/O period lets a scheduler (or the PredictiveLimit helper below)
// anticipate the next burst.
#pragma once

#include <complex>
#include <vector>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace iobts::tmio {

/// In-place iterative radix-2 Cooley-Tukey FFT; size must be a power of two.
void fftRadix2(std::vector<std::complex<double>>& data);

/// Power spectrum |X_k|^2 for k = 0..n/2 of a real signal (after windowing);
/// the input size must be a power of two.
std::vector<double> powerSpectrum(const std::vector<double>& samples);

/// Circular autocorrelation r(lag) computed via FFT (Wiener-Khinchin);
/// size must be a power of two. r(0) is the signal energy.
std::vector<double> autocorrelation(const std::vector<double>& samples);

struct PeriodicityResult {
  bool periodic = false;
  double period = 0.0;       // seconds (0 if aperiodic)
  double frequency = 0.0;    // Hz
  double confidence = 0.0;   // share of non-DC energy in the dominant peak
  int dominant_bin = 0;      // index into the spectrum
  std::vector<double> spectrum;  // |X_k|^2, k = 0..n/2
  double window_start = 0.0;
  double window_end = 0.0;
};

class FtioAnalyzer {
 public:
  struct Config {
    /// Resampling grid (power of two). More bins = finer frequency
    /// resolution at the cost of noise sensitivity.
    std::size_t bins = 512;
    /// Dominant-peak energy share required to call the signal periodic.
    double min_confidence = 0.25;
    /// Ignore frequencies below this many full cycles in the window (the
    /// first bins mostly carry trend/DC leakage).
    int min_cycles = 2;
  };

  FtioAnalyzer() : FtioAnalyzer(Config{}) {}
  explicit FtioAnalyzer(Config config);

  /// Analyze a piecewise-constant signal over [t0, t1].
  PeriodicityResult analyzeSeries(const StepSeries& signal, double t0,
                                  double t1) const;

  /// Analyze discrete event times (e.g. phase starts): builds an impulse
  /// train and detects the cadence by autocorrelation (spike trains spread
  /// their spectral energy over all harmonics, so the spectral-peak
  /// criterion of analyzeSeries would under-rate them). Needs >= 4 events.
  PeriodicityResult analyzeEvents(const std::vector<double>& events) const;

  const Config& config() const noexcept { return config_; }

  /// Next expected event time after `last_event` under `result`'s period.
  static double predictNext(const PeriodicityResult& result,
                            double last_event);

 private:
  PeriodicityResult analyzeSamples(std::vector<double> samples, double t0,
                                   double t1) const;

  Config config_;
};

}  // namespace iobts::tmio
