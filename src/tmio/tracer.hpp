// TMIO -- Tracing MPI-IO (the paper's core library).
//
// The tracer hooks the runtime's PMPI-style seam (mpisim::IoHooks) and, per
// rank and per phase:
//
//   (1) traces the required bandwidth B_ij (Eq. 1: bytes over the window
//       from submit to the matching wait being *reached*) and the
//       throughput T_ij (Eq. 2: bytes over the I/O thread's actual window);
//   (2) computes the next-phase limit with the configured strategy
//       (direct / up-only / adaptive, Sec. IV-B) and pushes it to the MPI
//       extension (World::setRankLimit) -- the "bandwidth limitation";
//   (3) aggregates records and writes them out (JSONL/CSV), charging a
//       modelled peri-run intercept overhead and a post-run finalize
//       (gather) overhead -- the quantities of Figs. 5/6.
//
// Application-level series (Eq. 3) are produced by appRequiredSeries /
// appThroughputSeries / appLimitSeries.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mpisim/world.hpp"
#include "tmio/publisher.hpp"
#include "tmio/records.hpp"
#include "tmio/regions.hpp"
#include "tmio/strategy.hpp"

namespace iobts::tmio {

/// When does a phase's bandwidth window end if several requests were
/// submitted in the same phase?
enum class PhaseEndMode : int {
  /// te = when the *first* queued request reaches its wait (paper's choice:
  /// yields higher, safer requirements).
  FirstWait,
  /// te = when the *last* queued request reaches its wait (TMIO option).
  LastWait,
};

/// Models TMIO's own cost (Sec. IV-D).
struct OverheadModel {
  /// Peri-run: virtual seconds charged per intercepted MPI call.
  Seconds intercept_per_call = 0.5e-6;
  /// Post-run (MPI_Finalize): fixed cost plus a tree-gather term that grows
  /// with log2(ranks) plus a per-record serialization term.
  Seconds finalize_base = 2e-3;
  Seconds finalize_per_stage = 12e-3;  // x ceil(log2 ranks)
  Seconds finalize_per_record = 1e-6;
  /// Root-gather volume term: the rank-0 gather receives every rank's
  /// records, so each rank's finalize grows linearly with the rank count.
  /// Calibrated to the paper's Fig. 5/6: post-run overhead reaches a few
  /// percent of the ~1000 s run at 9216 ranks.
  Seconds finalize_per_rank = 5e-3;
};

struct TracerConfig {
  StrategyKind strategy = StrategyKind::None;
  StrategyParams params{};
  PhaseEndMode phase_end = PhaseEndMode::FirstWait;
  OverheadModel overhead{};
  /// When false, B/T are traced but no limit is ever applied (the paper's
  /// "without limit" baseline runs still preload TMIO).
  bool apply_limits = true;
  /// Optional online streaming: every record is published the moment it is
  /// produced (the paper's ZeroMQ/TCP path). Not owned; must outlive the
  /// tracer.
  MetricsPublisher* publisher = nullptr;
};

class Tracer : public mpisim::IoHooks {
 public:
  explicit Tracer(TracerConfig config);
  ~Tracer() override;

  /// Bind to the world whose hooks we are (call before World::launch). The
  /// tracer applies limits through this world.
  void attach(mpisim::World& world);

  // --- IoHooks --------------------------------------------------------------
  Seconds interceptOverhead() const override;
  void onSubmit(const mpisim::RequestInfo& info) override;
  void onComplete(const mpisim::RequestInfo& info) override;
  void onWaitEnter(const mpisim::RequestInfo& info) override;
  void onWaitExit(const mpisim::RequestInfo& info, Seconds blocked) override;
  void onSyncStart(const mpisim::RequestInfo& info) override;
  void onSyncEnd(const mpisim::RequestInfo& info) override;
  Seconds onFinalize(int rank) override;

  // --- Results ---------------------------------------------------------------
  const TracerConfig& config() const noexcept { return config_; }
  const std::vector<PhaseRecord>& phaseRecords() const noexcept {
    return phases_;
  }
  const std::vector<ThroughputRecord>& throughputRecords() const noexcept {
    return throughputs_;
  }
  const std::vector<LimitChange>& limitChanges() const noexcept {
    return limit_changes_;
  }

  /// Time when any rank first applied a limit (the figures' purple marker);
  /// kNoTime if never.
  sim::Time firstLimitTime() const noexcept;

  /// Async/sync time classification of one rank (exploit/lost/sync).
  const AsyncTimeSplit& rankSplit(int rank) const;

  /// Application-level required bandwidth B (Eq. 3 over B_ij intervals).
  StepSeries appRequiredSeries(std::optional<pfs::Channel> channel = {}) const;

  /// Application-level throughput T (Eq. 3 over T_ij windows).
  StepSeries appThroughputSeries(
      std::optional<pfs::Channel> channel = {}) const;

  /// Application-level applied limit B_L (Eq. 3 over phases' applied limits).
  StepSeries appLimitSeries(std::optional<pfs::Channel> channel = {}) const;

  /// max over regions of B -- the minimal application-level bandwidth with
  /// zero waiting (Sec. IV-C).
  BytesPerSec minimalRequiredBandwidth() const;

  /// Dump all records as JSON Lines / CSV.
  void writeJsonl(const std::string& path) const;
  void writeCsv(const std::string& prefix) const;

 private:
  struct OpenPhase;
  struct RankState;

  RankState& state(int rank);
  sim::Time now() const;
  void closePhase(RankState& rank_state, OpenPhase& phase, int rank);

  TracerConfig config_;
  mpisim::World* world_ = nullptr;
  std::vector<std::unique_ptr<RankState>> ranks_;

  std::vector<PhaseRecord> phases_;
  std::vector<ThroughputRecord> throughputs_;
  std::vector<LimitChange> limit_changes_;
};

}  // namespace iobts::tmio
