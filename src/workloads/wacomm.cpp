#include "workloads/wacomm.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace iobts::workloads {

Bytes wacommShareBytes(const WacommConfig& config, int rank, int ranks) {
  IOBTS_CHECK(ranks > 0 && rank >= 0 && rank < ranks, "bad rank");
  const long per = config.particles / ranks;
  const long mine =
      (rank == ranks - 1) ? config.particles - per * (ranks - 1) : per;
  return static_cast<Bytes>(mine) * config.bytes_per_particle;
}

pfs::ContentTag wacommTag(int rank, int iteration) {
  std::uint64_t x = (static_cast<std::uint64_t>(rank) << 24) ^
                    static_cast<std::uint64_t>(iteration) ^ 0x3a90aaULL;
  return splitmix64(x);
}

mpisim::World::RankProgram wacommProgram(WacommConfig config) {
  IOBTS_CHECK(config.iterations > 0, "need at least one iteration");
  IOBTS_CHECK(config.particles > 0, "need particles");
  return [config](mpisim::RankCtx& ctx) -> sim::Task<void> {
    const int ranks = ctx.size();
    const Seconds hour_compute =
        config.iteration_fixed_seconds +
        config.iteration_compute_core_seconds / static_cast<double>(ranks);
    const Bytes share = wacommShareBytes(config, ctx.rank(), ranks);
    const Bytes total_bytes =
        static_cast<Bytes>(config.particles) * config.bytes_per_particle;
    const Bytes my_offset =
        static_cast<Bytes>(config.particles / ranks) *
        config.bytes_per_particle * static_cast<Bytes>(ctx.rank());

    // Rank 0 reads the particle restart file; everyone waits for the
    // distribution (a bcast of the particle blocks).
    if (ctx.rank() == 0) {
      auto restart = ctx.open(config.path_prefix + ".restart");
      co_await restart.readAt(0, total_bytes);
    }
    co_await ctx.bcast(share);

    auto out = ctx.open(config.path_prefix + ".out");
    mpisim::Request pending;

    for (int hour = 0; hour < config.iterations; ++hour) {
      // Advance the ensemble for one simulated hour (hierarchical OpenMP
      // parallelism inside the rank is folded into this phase).
      co_await ctx.compute(hour_compute);

      // Optional mid-run particle injection (rank 0 re-reads input).
      if (config.hourly_read && ctx.rank() == 0) {
        auto inject = ctx.open(config.path_prefix + ".inject");
        co_await inject.readAt(0, config.bytes_per_particle * 1024);
      }

      // Previous iteration's async write must drain before this slot of the
      // file is rewritten.
      if (pending.valid()) {
        co_await ctx.wait(pending);
        pending = {};
      }

      const bool last = (hour == config.iterations - 1);
      const pfs::ContentTag tag = wacommTag(ctx.rank(), hour);
      if (config.async && !last) {
        // The modified WaComM++: write this hour's particles in the
        // background of the next compute phase.
        pending = co_await out.iwriteAt(my_offset, share, tag);
      } else {
        // Original behaviour / final write: synchronous (nothing left to
        // overlap after the last iteration).
        co_await out.writeAt(my_offset, share, tag);
      }
    }
    if (pending.valid()) co_await ctx.wait(pending);
  };
}

}  // namespace iobts::workloads
