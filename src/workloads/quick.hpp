// Reduced-scale paper-figure configurations ("quick" twins).
//
// The golden-digest gate and the scenario twin suite both run fig10
// (WaComM++) and fig13 (HACC-IO) at this scale; sharing the factories (and
// the checked-in digests) here is what makes "the DSL twin is byte-identical
// to the hand-coded workload" a single-source claim instead of two copies
// that could drift apart.
#pragma once

#include <cstdint>

#include "pfs/shared_link.hpp"
#include "tmio/tracer.hpp"
#include "workloads/hacc_io.hpp"
#include "workloads/wacomm.hpp"

namespace iobts::workloads {

inline constexpr int kFig10QuickRanks = 48;
inline constexpr int kFig13QuickRanks = 32;

/// Golden digests of the canonical run serializations (see
/// tests/support/golden.hpp). Regenerate with IOBTS_DUMP_GOLDEN=1.
inline constexpr std::uint64_t kFig10QuickDigest = 0x8c4748554547ac7bULL;
inline constexpr std::uint64_t kFig13QuickDigest = 0x6038e3b0b4acfdebULL;

/// The Lichtenberg-calibrated PFS (paper Sec. V): 106/120 GB/s with a
/// 1.5 GB/s per-client cap.
pfs::LinkConfig lichtenbergLinkConfig();

/// fig10 runs on the Lichtenberg link plus light congestion.
pfs::LinkConfig fig10QuickLinkConfig();

/// Fig. 10 at reduced scale: 2e5 particles, 2048 B/particle, 6 iterations,
/// the bench's compute split. Run on kFig10QuickRanks ranks.
WacommConfig fig10QuickWacommConfig();

/// Fig. 13 at reduced scale: 2 loops, nine-array write split, paper-scaled
/// compute for kFig13QuickRanks ranks.
HaccIoConfig fig13QuickHaccConfig();

/// Tracer at the paper's 1.1 tolerance with the given strategy.
tmio::TracerConfig quickTracerConfig(tmio::StrategyKind strategy);

}  // namespace iobts::workloads
