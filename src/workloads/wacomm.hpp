// WaComM++ (paper Sec. VI-A).
//
// WaComM++ is a Lagrangian pollutant transport and diffusion model. Per
// simulated hour the particle ensemble is advanced (MPI-distributed,
// OpenMP inside a rank -- modelled as one compute phase), and the paper's
// modified version writes the particles *asynchronously* every iteration;
// the final write stays synchronous (no compute left to overlap). Rank 0
// reads the initial particle restart file, and optionally re-reads new
// particles after every hour.
//
// Strong scaling: the ensemble is fixed, so per-rank compute shrinks with
// the rank count (the paper runs 24..9216 ranks on the same problem).
#pragma once

#include "mpisim/world.hpp"

namespace iobts::workloads {

struct WacommConfig {
  /// Total particles in the ensemble (paper: 2e5 particles, 50 iterations).
  long particles = 200'000;
  int iterations = 50;
  Bytes bytes_per_particle = 48;  // position/velocity/state record

  /// Aggregate compute cost of one simulated hour in core-seconds; a rank
  /// spends iteration_fixed_seconds + iteration_compute_core_seconds / ranks
  /// per iteration. The fixed term models the non-scaling portion (grid
  /// handling, I/O staging, hierarchical-parallelism overhead) that keeps
  /// the paper's 9216-rank runs at ~2.3 s per iteration.
  Seconds iteration_compute_core_seconds = 96.0;
  Seconds iteration_fixed_seconds = 0.0;

  /// Write the per-iteration results asynchronously (the paper's modified
  /// version); false reverts to blocking per-iteration writes.
  bool async = true;
  /// Re-read new particles after every hour (paper: "in some cases").
  bool hourly_read = false;

  std::string path_prefix = "/pfs/wacomm";
};

/// Bytes of results a given rank owns (particle block decomposition).
Bytes wacommShareBytes(const WacommConfig& config, int rank, int ranks);

pfs::ContentTag wacommTag(int rank, int iteration);

mpisim::World::RankProgram wacommProgram(WacommConfig config);

}  // namespace iobts::workloads
