#include "workloads/hacc_io.hpp"

#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace iobts::workloads {

Bytes haccBytesPerRankPerLoop(const HaccIoConfig& config) {
  return config.particles_per_rank * kHaccBytesPerParticle;
}

pfs::ContentTag haccTag(int rank, int loop) {
  std::uint64_t x = (static_cast<std::uint64_t>(rank) << 20) ^
                    static_cast<std::uint64_t>(loop) ^ 0x9acc10ULL;
  return splitmix64(x);
}

namespace {

constexpr pfs::ContentTag kHeaderTag = 0x4ead0001;

struct WriteChunk {
  Bytes offset;
  Bytes length;
};

std::vector<WriteChunk> splitPayload(Bytes data_offset, Bytes payload,
                                     int requests) {
  std::vector<WriteChunk> chunks;
  const Bytes per = payload / requests;
  Bytes cursor = data_offset;
  for (int i = 0; i < requests; ++i) {
    const Bytes len = (i == requests - 1) ? payload - per * (requests - 1)
                                          : per;
    chunks.push_back({cursor, len});
    cursor += len;
  }
  return chunks;
}

/// The modified HACC-IO of Fig. 12: write overlaps verify, read overlaps the
/// next compute, waits close each block.
sim::Task<void> asyncLoop(mpisim::RankCtx& ctx, const HaccIoConfig& cfg,
                          HaccIoStats* stats) {
  auto file = ctx.open(cfg.path_prefix + "." + std::to_string(ctx.rank()));
  const Bytes payload = haccBytesPerRankPerLoop(cfg);
  const Bytes data_offset = cfg.header_bytes;
  const auto chunks =
      splitPayload(data_offset, payload, cfg.requests_per_write);
  const Seconds memcpy_time =
      static_cast<double>(payload) / cfg.memcpy_rate;

  mpisim::Request read_req;
  int read_loop = -1;

  auto check_read = [&]() {
    if (read_loop < 0) return;
    const bool ok =
        file.verify(data_offset, payload, haccTag(ctx.rank(), read_loop));
    if (stats) {
      if (ok) {
        ++stats->verified_loops;
      } else {
        ++stats->verify_failures;
      }
    }
  };

  for (int loop = 0; loop < cfg.loops; ++loop) {
    // -- compute block (fill arrays) ---------------------------------------
    co_await ctx.bcast(cfg.bcast_bytes);
    co_await ctx.compute(cfg.compute_seconds);
    // End of compute block: wait for the previous loop's read-back so the
    // verify block may use it; also checks the data before we overwrite it.
    if (read_req.valid()) {
      co_await ctx.wait(read_req);
      check_read();
      read_req = {};
    }

    // Header stays synchronous, then the arrays go out asynchronously.
    co_await file.writeAt(0, cfg.header_bytes, kHeaderTag);
    std::vector<mpisim::Request> writes;
    writes.reserve(chunks.size());
    for (const WriteChunk& chunk : chunks) {
      writes.push_back(co_await file.iwriteAt(chunk.offset, chunk.length,
                                              haccTag(ctx.rank(), loop)));
    }

    // -- verify block (compare previous data, memcpy the new copy) ---------
    co_await ctx.bcast(cfg.bcast_bytes);
    co_await ctx.compute(cfg.verify_seconds + memcpy_time);
    // End of verify block: the write must have drained before we read back.
    co_await ctx.waitAll(writes);

    // Read-back overlaps the next loop's compute block.
    read_req = co_await file.ireadAt(data_offset, payload);
    read_loop = loop;
  }

  // Trailing verify: the last loop's read-back still overlaps one final
  // compute-sized block before its wait (the same window the in-loop reads
  // get; otherwise the wait would follow the submit immediately and the
  // phase window would be empty).
  co_await ctx.compute(cfg.compute_seconds);
  co_await ctx.wait(read_req);
  check_read();
}

/// Vanilla HACC-IO: blocking write_at/read_at, everything visible.
sim::Task<void> syncLoop(mpisim::RankCtx& ctx, const HaccIoConfig& cfg,
                         HaccIoStats* stats) {
  auto file = ctx.open(cfg.path_prefix + "." + std::to_string(ctx.rank()));
  const Bytes payload = haccBytesPerRankPerLoop(cfg);
  const Bytes data_offset = cfg.header_bytes;
  const auto chunks =
      splitPayload(data_offset, payload, cfg.requests_per_write);
  const Seconds memcpy_time =
      static_cast<double>(payload) / cfg.memcpy_rate;

  for (int loop = 0; loop < cfg.loops; ++loop) {
    co_await ctx.bcast(cfg.bcast_bytes);
    co_await ctx.compute(cfg.compute_seconds);

    co_await file.writeAt(0, cfg.header_bytes, kHeaderTag);
    for (const WriteChunk& chunk : chunks) {
      co_await file.writeAt(chunk.offset, chunk.length,
                            haccTag(ctx.rank(), loop));
    }
    co_await file.readAt(data_offset, payload);

    co_await ctx.bcast(cfg.bcast_bytes);
    co_await ctx.compute(cfg.verify_seconds + memcpy_time);
    const bool ok =
        file.verify(data_offset, payload, haccTag(ctx.rank(), loop));
    if (stats) {
      if (ok) {
        ++stats->verified_loops;
      } else {
        ++stats->verify_failures;
      }
    }
  }
}

}  // namespace

mpisim::World::RankProgram haccIoProgram(HaccIoConfig config,
                                         HaccIoStats* stats) {
  IOBTS_CHECK(config.loops > 0, "HACC-IO needs at least one loop");
  IOBTS_CHECK(config.requests_per_write > 0,
              "requests_per_write must be positive");
  IOBTS_CHECK(config.particles_per_rank > 0, "need particles");
  return [config, stats](mpisim::RankCtx& ctx) -> sim::Task<void> {
    if (config.async) {
      co_await asyncLoop(ctx, config, stats);
    } else {
      co_await syncLoop(ctx, config, stats);
    }
  };
}

mpisim::World::RankProgram haccIoProgram(HaccIoConfig config) {
  return haccIoProgram(config, nullptr);
}

}  // namespace iobts::workloads
