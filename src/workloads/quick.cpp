#include "workloads/quick.hpp"

#include <cmath>

namespace iobts::workloads {

pfs::LinkConfig lichtenbergLinkConfig() {
  pfs::LinkConfig cfg;
  cfg.write_capacity = 106e9;
  cfg.read_capacity = 120e9;
  cfg.client_rate_cap = 1.5e9;
  return cfg;
}

pfs::LinkConfig fig10QuickLinkConfig() {
  pfs::LinkConfig cfg = lichtenbergLinkConfig();
  cfg.congestion_gamma = 2e-4;
  return cfg;
}

WacommConfig fig10QuickWacommConfig() {
  WacommConfig cfg;
  cfg.bytes_per_particle = 2048;
  cfg.iteration_compute_core_seconds = 48.0;
  cfg.iteration_fixed_seconds = 2.2;
  cfg.iterations = 6;
  return cfg;
}

HaccIoConfig fig13QuickHaccConfig() {
  HaccIoConfig cfg;
  const double scale =
      std::pow(static_cast<double>(kFig13QuickRanks), 0.55);
  cfg.compute_seconds = 0.30 * scale;
  cfg.verify_seconds = 0.25 * scale;
  cfg.requests_per_write = 9;
  cfg.loops = 2;
  return cfg;
}

tmio::TracerConfig quickTracerConfig(tmio::StrategyKind strategy) {
  tmio::TracerConfig cfg;
  cfg.strategy = strategy;
  cfg.params.tolerance = 1.1;
  return cfg;
}

}  // namespace iobts::workloads
