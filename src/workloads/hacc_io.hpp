// HACC-IO (paper Sec. VI-B).
//
// HACC-IO mimics one I/O phase of HACC: fill per-particle arrays, write a
// header plus the arrays to a per-rank file with explicit-offset MPI-IO,
// read everything back and verify against the in-memory copy. The paper
// wraps these blocks in an outer loop and converts the blocking
// write_at/read_at into iwrite_at/iread_at so that (Fig. 12)
//
//   write(k)  overlaps  verify(k)      -- waited at the end of verify
//   read(k)   overlaps  compute(k+1)   -- waited at the end of compute
//
// with a memcpy at the end of the verify block (data for the next verify)
// and global broadcasts inside compute/verify "for more variability". The
// header writes stay synchronous.
//
// The vanilla (sync) variant keeps blocking write/read, as in CORAL HACC-IO.
#pragma once

#include "mpisim/world.hpp"

namespace iobts::workloads {

/// Canonical HACC particle record: xx,yy,zz,vx,vy,vz,phi (float32),
/// pid (int64), mask (uint8) = 38 bytes.
inline constexpr Bytes kHaccBytesPerParticle = 38;

struct HaccIoConfig {
  Bytes particles_per_rank = 1'000'000;  // paper: 1e6
  int loops = 10;                        // paper: 10
  bool async = true;                     // modified (Fig. 12) vs vanilla
  /// The nine arrays are written as one request by default; set >1 to split
  /// into that many per-array requests (all submitted into the same phase).
  int requests_per_write = 1;

  // --- Calibration (virtual seconds per rank, see DESIGN.md §6) ----------
  /// Compute block: fill the arrays + broadcast.
  Seconds compute_seconds = 0.30;
  /// Verify block: compare read-back data + memcpy the next copy.
  Seconds verify_seconds = 0.25;
  /// memcpy of the full particle arrays at the end of verify (memory rate).
  BytesPerSec memcpy_rate = 8.0e9;

  Bytes header_bytes = 64;  // synchronous header write per loop
  Bytes bcast_bytes = 8;    // the added global broadcasts
  std::string path_prefix = "/pfs/hacc";
};

/// Bytes of particle payload each rank writes/reads per loop.
Bytes haccBytesPerRankPerLoop(const HaccIoConfig& config);

/// Content tag for (rank, loop) -- lets verify detect stale loop data.
pfs::ContentTag haccTag(int rank, int loop);

/// Build the rank program. The returned callable can be launched on any
/// World whose rank count matches the intended run.
mpisim::World::RankProgram haccIoProgram(HaccIoConfig config);

/// Counters a HACC-IO run exposes for test/bench assertions. The simulation
/// is single-threaded, so plain counters suffice.
struct HaccIoStats {
  long verify_failures = 0;
  long verified_loops = 0;
};

/// Variant wiring verification results into `stats` (must outlive the run).
mpisim::World::RankProgram haccIoProgram(HaccIoConfig config,
                                         HaccIoStats* stats);

}  // namespace iobts::workloads
