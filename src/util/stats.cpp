#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace iobts {

void RunningStats::add(double x) noexcept {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Percentiles::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  IOBTS_CHECK(p >= 0.0 && p <= 100.0, "percentile out of range");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (samples_.size() == 1) return samples_.front();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  IOBTS_CHECK(hi > lo, "histogram range must be non-empty");
  IOBTS_CHECK(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<long>((x - lo_) / width);
  idx = std::clamp(idx, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::binLow(std::size_t i) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::binHigh(std::size_t i) const noexcept {
  return binLow(i + 1);
}

std::string Histogram::sparkline() const {
  static const char* kBlocks[] = {" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  std::size_t peak = 0;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (const auto c : counts_) {
    const std::size_t level =
        peak == 0 ? 0 : (c * 8 + peak - 1) / peak;  // ceil to show nonzero
    out += kBlocks[std::min<std::size_t>(level, 8)];
  }
  return out;
}

void StepSeries::add(double t, double value) {
  IOBTS_CHECK(points_.empty() || t >= points_.back().first,
              "StepSeries samples must be time-ordered");
  if (!points_.empty() && points_.back().first == t) {
    points_.back().second = value;  // same instant: last write wins
    return;
  }
  points_.emplace_back(t, value);
}

double StepSeries::at(double t) const noexcept {
  if (points_.empty() || t < points_.front().first) return 0.0;
  // Last sample with time <= t.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double lhs, const std::pair<double, double>& rhs) {
        return lhs < rhs.first;
      });
  return std::prev(it)->second;
}

double StepSeries::integrate(double t0, double t1) const noexcept {
  if (points_.empty() || t1 <= t0) return 0.0;
  double area = 0.0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const double seg_start = points_[i].first;
    const double seg_end =
        (i + 1 < points_.size()) ? points_[i + 1].first : t1;
    const double a = std::max(seg_start, t0);
    const double b = std::min(seg_end, t1);
    if (b > a) area += points_[i].second * (b - a);
  }
  return area;
}

double StepSeries::maxValue() const noexcept {
  double best = 0.0;
  for (const auto& [t, v] : points_) {
    (void)t;
    best = std::max(best, v);
  }
  return best;
}

std::vector<std::pair<double, double>> StepSeries::resample(
    double t0, double t1, std::size_t n) const {
  IOBTS_CHECK(n >= 2, "resample needs at least two points");
  IOBTS_CHECK(t1 > t0, "resample window must be non-empty");
  std::vector<std::pair<double, double>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t =
        t0 + (t1 - t0) * static_cast<double>(i) / static_cast<double>(n - 1);
    out.emplace_back(t, at(t));
  }
  return out;
}

std::vector<std::pair<double, double>> StepSeries::resampleMax(
    double t0, double t1, std::size_t n) const {
  IOBTS_CHECK(n >= 2, "resample needs at least two points");
  IOBTS_CHECK(t1 > t0, "resample window must be non-empty");
  std::vector<std::pair<double, double>> out;
  out.reserve(n);
  const double bin = (t1 - t0) / static_cast<double>(n - 1);
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = t0 + bin * (static_cast<double>(i) - 0.5);
    const double hi = lo + bin;
    // Value entering the bin plus every sample inside it.
    double value = at(lo);
    while (cursor < points_.size() && points_[cursor].first < lo) ++cursor;
    for (std::size_t k = cursor; k < points_.size() && points_[k].first < hi;
         ++k) {
      value = std::max(value, points_[k].second);
    }
    out.emplace_back(t0 + bin * static_cast<double>(i), value);
  }
  return out;
}

}  // namespace iobts
