#include "util/csv.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace iobts {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  IOBTS_CHECK(out_.is_open(), "cannot open CSV file '" + path + "'");
}

void CsvWriter::header(std::initializer_list<std::string_view> columns) {
  std::vector<std::string> cols;
  cols.reserve(columns.size());
  for (const auto c : columns) cols.emplace_back(c);
  header(cols);
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  IOBTS_CHECK(columns_ == 0 && rows_ == 0, "header must be written first");
  columns_ = columns.size();
  writeFields(columns);
}

void CsvWriter::row(std::initializer_list<std::string_view> fields) {
  std::vector<std::string> f;
  f.reserve(fields.size());
  for (const auto x : fields) f.emplace_back(x);
  row(f);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  IOBTS_CHECK(columns_ == 0 || fields.size() == columns_,
              "row width differs from header");
  writeFields(fields);
  ++rows_;
}

void CsvWriter::rowNumeric(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  char buf[64];
  for (const double v : values) {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    fields.emplace_back(buf);
  }
  row(fields);
}

void CsvWriter::writeFields(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& f : fields) {
    if (!first) out_ << ',';
    first = false;
    out_ << escape(f);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace iobts
