#include "util/string_util.hpp"

#include <cstdarg>
#include <cstdio>

namespace iobts {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && (text[b] == ' ' || text[b] == '\t' || text[b] == '\n' ||
                   text[b] == '\r')) {
    ++b;
  }
  while (e > b && (text[e - 1] == ' ' || text[e - 1] == '\t' ||
                   text[e - 1] == '\n' || text[e - 1] == '\r')) {
    --e;
  }
  return text.substr(b, e - b);
}

bool startsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string padLeft(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string(text);
  return std::string(width - text.size(), ' ') + std::string(text);
}

std::string padRight(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace iobts
