// Minimal JSON value + serializer + parser.
//
// TMIO emits its trace records as JSON Lines (one object per record), the
// format the paper's plotting scripts consume. The parser exists for our own
// tooling (tools/bench_to_json merges google-benchmark JSON reports into the
// tracked BENCH_hotpath.json trajectory); it handles standard JSON and is not
// hardened against adversarial input.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace iobts {

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps keys sorted -> deterministic output for golden tests.
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(unsigned i) : value_(static_cast<double>(i)) {}
  Json(long i) : value_(static_cast<double>(i)) {}
  Json(unsigned long i) : value_(static_cast<double>(i)) {}
  Json(long long i) : value_(static_cast<double>(i)) {}
  Json(unsigned long long i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  bool isNull() const noexcept { return std::holds_alternative<std::nullptr_t>(value_); }
  bool isBool() const noexcept { return std::holds_alternative<bool>(value_); }
  bool isNumber() const noexcept { return std::holds_alternative<double>(value_); }
  bool isString() const noexcept { return std::holds_alternative<std::string>(value_); }
  bool isArray() const noexcept { return std::holds_alternative<JsonArray>(value_); }
  bool isObject() const noexcept { return std::holds_alternative<JsonObject>(value_); }

  bool asBool() const { return std::get<bool>(value_); }
  double asNumber() const { return std::get<double>(value_); }
  const std::string& asString() const { return std::get<std::string>(value_); }
  const JsonArray& asArray() const { return std::get<JsonArray>(value_); }
  const JsonObject& asObject() const { return std::get<JsonObject>(value_); }
  JsonArray& asArray() { return std::get<JsonArray>(value_); }
  JsonObject& asObject() { return std::get<JsonObject>(value_); }

  /// Compact single-line serialization (suitable for JSONL).
  std::string dump() const;

  /// Pretty serialization with two-space indentation.
  std::string pretty() const;

  /// Parse a complete JSON document. Throws CheckError on malformed input or
  /// trailing non-whitespace.
  static Json parse(std::string_view text);

 private:
  void dumpTo(std::string& out, int indent, int depth) const;
  static void escapeTo(std::string& out, const std::string& s);

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

}  // namespace iobts
