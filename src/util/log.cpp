#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace iobts::log {

namespace {

std::atomic<Level> g_level{Level::Off};  // Off means "not initialised yet"
std::atomic<bool> g_initialised{false};
std::atomic<std::ostream*> g_sink{nullptr};
std::mutex g_emit_mutex;

}  // namespace

Level levelFromEnv() noexcept {
  if (const char* env = std::getenv("IOBTS_LOG_LEVEL")) {
    return parseLevel(env);
  }
  if (const char* env = std::getenv("IOBTS_LOG")) {
    return parseLevel(env);
  }
  return Level::Warn;
}

Level parseLevel(std::string_view name) noexcept {
  if (name == "trace") return Level::Trace;
  if (name == "debug") return Level::Debug;
  if (name == "info") return Level::Info;
  if (name == "warn") return Level::Warn;
  if (name == "error") return Level::Error;
  if (name == "off") return Level::Off;
  return Level::Warn;
}

const char* levelName(Level lvl) noexcept {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}

Level level() noexcept {
  if (!g_initialised.load(std::memory_order_acquire)) {
    g_level.store(levelFromEnv(), std::memory_order_relaxed);
    g_initialised.store(true, std::memory_order_release);
  }
  return g_level.load(std::memory_order_relaxed);
}

void setLevel(Level lvl) noexcept {
  g_level.store(lvl, std::memory_order_relaxed);
  g_initialised.store(true, std::memory_order_release);
}

void setSink(std::ostream* sink) noexcept { g_sink.store(sink); }

namespace detail {

LineBuilder::LineBuilder(Level lvl, const char* file, int line) : level_(lvl) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << '[' << levelName(lvl) << "] " << base << ':' << line << ": ";
}

LineBuilder::~LineBuilder() {
  std::ostream* sink = g_sink.load();
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  (sink ? *sink : std::cerr) << stream_.str() << '\n';
}

}  // namespace detail
}  // namespace iobts::log
