// Lightweight runtime-check macros used across the library.
//
// IOBTS_CHECK(cond, msg)   -- always-on invariant check; throws CheckError.
// IOBTS_DCHECK(cond, msg)  -- debug-only (compiled out in NDEBUG builds).
//
// We throw instead of aborting so that tests can assert on failure paths and
// so that long simulation campaigns can report which experiment tripped.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace iobts {

/// Error thrown by IOBTS_CHECK on a violated invariant.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void checkFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "IOBTS_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace iobts

#define IOBTS_CHECK(cond, msg)                                            \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::iobts::detail::checkFailed(#cond, __FILE__, __LINE__,             \
                                   std::string(msg));                     \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define IOBTS_DCHECK(cond, msg) \
  do {                          \
  } while (false)
#else
#define IOBTS_DCHECK(cond, msg) IOBTS_CHECK(cond, msg)
#endif
