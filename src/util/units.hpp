// Units used throughout the library.
//
// Conventions (match the paper):
//   * byte counts       -> Bytes     (std::uint64_t)
//   * bandwidth / rate  -> double bytes-per-second (BytesPerSec)
//   * simulated time    -> double seconds
//
// Helpers format values the way the paper's plots do (MB/s, GB/s, ...)
// and parse human-friendly strings like "4MiB" or "120GB/s" for CLI flags.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace iobts {

using Bytes = std::uint64_t;
using BytesPerSec = double;
using Seconds = double;

// Decimal units (used for bandwidth, as in the paper: 120 GB/s).
inline constexpr Bytes kKB = 1000ULL;
inline constexpr Bytes kMB = 1000ULL * kKB;
inline constexpr Bytes kGB = 1000ULL * kMB;
inline constexpr Bytes kTB = 1000ULL * kGB;

// Binary units (used for request/sub-request sizes: 4 MiB chunks).
inline constexpr Bytes kKiB = 1024ULL;
inline constexpr Bytes kMiB = 1024ULL * kKiB;
inline constexpr Bytes kGiB = 1024ULL * kMiB;

/// "1.50 GB", "37 MB", "128 B" -- decimal, two significant decimals.
std::string formatBytes(Bytes bytes);

/// "1.50 GB/s", "850 MB/s".
std::string formatBandwidth(BytesPerSec rate);

/// "12.3 s", "450 ms", "8.1 us".
std::string formatDuration(Seconds seconds);

/// Parse "64", "64KiB", "4MiB", "1.5GB", "120GB/s" (suffix case-insensitive,
/// optional "/s" ignored). Throws CheckError on malformed input.
Bytes parseBytes(std::string_view text);

/// Parse a bandwidth string; same grammar as parseBytes.
BytesPerSec parseBandwidth(std::string_view text);

}  // namespace iobts
