#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace iobts {

namespace {
constexpr char kSeriesGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};
constexpr char kSegmentGlyphs[] = {'#', '=', '+', '.', ':', '*', '~', ' '};

std::string formatTick(double v) {
  char buf[32];
  if (std::fabs(v) >= 1e6 || (std::fabs(v) < 1e-3 && v != 0.0)) {
    std::snprintf(buf, sizeof(buf), "%.2e", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}
}  // namespace

void LineChart::addSeries(std::string name,
                          std::vector<std::pair<double, double>> xy) {
  series_.push_back({std::move(name), std::move(xy)});
}

void LineChart::setYRange(double lo, double hi) {
  IOBTS_CHECK(hi > lo, "y range must be non-empty");
  y_fixed_ = true;
  y_lo_ = lo;
  y_hi_ = hi;
}

std::string LineChart::render() const {
  std::string out;
  if (!title_.empty()) out += title_ + "\n";

  // Data ranges.
  double x_lo = std::numeric_limits<double>::infinity();
  double x_hi = -std::numeric_limits<double>::infinity();
  double y_lo = y_fixed_ ? y_lo_ : std::numeric_limits<double>::infinity();
  double y_hi = y_fixed_ ? y_hi_ : -std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.xy) {
      any = true;
      x_lo = std::min(x_lo, x);
      x_hi = std::max(x_hi, x);
      if (!y_fixed_) {
        y_lo = std::min(y_lo, y);
        y_hi = std::max(y_hi, y);
      }
    }
  }
  if (!any) return out + "(no data)\n";
  if (x_hi <= x_lo) x_hi = x_lo + 1.0;
  if (y_hi <= y_lo) y_hi = y_lo + 1.0;
  if (!y_fixed_ && y_lo > 0.0 && y_lo < 0.25 * y_hi) y_lo = 0.0;

  // Canvas.
  std::vector<std::string> canvas(height_, std::string(width_, ' '));
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const char glyph = kSeriesGlyphs[si % sizeof(kSeriesGlyphs)];
    for (const auto& [x, y] : series_[si].xy) {
      const double fx = (x - x_lo) / (x_hi - x_lo);
      const double fy = (y - y_lo) / (y_hi - y_lo);
      if (fy < 0.0 || fy > 1.0) continue;
      const auto col = static_cast<std::size_t>(
          std::min(fx * static_cast<double>(width_ - 1),
                   static_cast<double>(width_ - 1)));
      const auto row_from_bottom = static_cast<std::size_t>(
          std::min(fy * static_cast<double>(height_ - 1),
                   static_cast<double>(height_ - 1)));
      canvas[height_ - 1 - row_from_bottom][col] = glyph;
    }
  }

  // Emit with a y-axis.
  const std::size_t label_width = 11;
  for (std::size_t r = 0; r < height_; ++r) {
    const double frac =
        static_cast<double>(height_ - 1 - r) / static_cast<double>(height_ - 1);
    const double y_val = y_lo + frac * (y_hi - y_lo);
    const bool labeled = (r == 0 || r == height_ - 1 || r == height_ / 2);
    out += labeled ? padLeft(formatTick(y_val), label_width)
                   : std::string(label_width, ' ');
    out += " |";
    out += canvas[r];
    out += '\n';
  }
  out += std::string(label_width + 1, ' ') + '+' + std::string(width_, '-') + '\n';
  out += std::string(label_width + 2, ' ') + formatTick(x_lo) +
         std::string(width_ > 24 ? width_ - 16 : 1, ' ') + formatTick(x_hi) + '\n';
  if (!x_label_.empty()) {
    out += std::string(label_width + 2 + width_ / 2 - x_label_.size() / 2, ' ') +
           x_label_ + '\n';
  }

  // Legend.
  out += "  legend:";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    out += strfmt("  %c %s", kSeriesGlyphs[si % sizeof(kSeriesGlyphs)],
                  series_[si].name.c_str());
  }
  if (!y_label_.empty()) out += "   [y: " + y_label_ + "]";
  out += '\n';
  return out;
}

void StackedBars::setSegments(std::vector<std::string> names) {
  IOBTS_CHECK(!names.empty() && names.size() <= sizeof(kSegmentGlyphs),
              "unsupported segment count");
  segment_names_ = std::move(names);
}

void StackedBars::addBar(std::string label, std::vector<double> percentages) {
  IOBTS_CHECK(percentages.size() == segment_names_.size(),
              "segment count mismatch");
  bars_.push_back({std::move(label), std::move(percentages)});
}

std::string StackedBars::render() const {
  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  std::size_t label_width = 8;
  for (const auto& b : bars_) label_width = std::max(label_width, b.label.size());

  for (const auto& b : bars_) {
    out += padRight(b.label, label_width) + " |";
    std::size_t used = 0;
    std::string annotation;
    for (std::size_t s = 0; s < b.percentages.size(); ++s) {
      const double pct = std::max(0.0, b.percentages[s]);
      auto cells = static_cast<std::size_t>(
          std::round(pct / 100.0 * static_cast<double>(bar_width_)));
      cells = std::min(cells, bar_width_ - used);
      out += std::string(cells, kSegmentGlyphs[s]);
      used += cells;
      annotation += strfmt("%s%s=%.1f%%", s ? " " : "",
                           segment_names_[s].c_str(), pct);
    }
    out += std::string(bar_width_ - used, ' ');
    out += "| " + annotation + '\n';
  }
  out += "  legend:";
  for (std::size_t s = 0; s < segment_names_.size(); ++s) {
    out += strfmt("  '%c' %s", kSegmentGlyphs[s], segment_names_[s].c_str());
  }
  out += '\n';
  return out;
}

void GanttChart::addRow(std::string label, double start, double end) {
  IOBTS_CHECK(end >= start, "gantt interval must be ordered");
  rows_.push_back({std::move(label), start, end});
}

std::string GanttChart::render() const {
  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  std::size_t label_width = 8;
  for (const auto& r : rows_) label_width = std::max(label_width, r.label.size());
  const double t_end = std::max(t_end_, 1e-9);

  for (const auto& r : rows_) {
    auto col = [&](double t) {
      return static_cast<std::size_t>(
          std::clamp(t / t_end, 0.0, 1.0) * static_cast<double>(width_));
    };
    const std::size_t c0 = col(r.start);
    const std::size_t c1 = std::max(col(r.end), c0 + 1);
    std::string bar(width_, ' ');
    for (std::size_t c = c0; c < std::min(c1, width_); ++c) bar[c] = '#';
    out += padRight(r.label, label_width) + " |" + bar + "| " +
           strfmt("[%.1f, %.1f]", r.start, r.end) + '\n';
  }
  out += padRight("", label_width) + " 0" +
         std::string(width_ > 10 ? width_ - 8 : 1, ' ') +
         strfmt("%.1f s\n", t_end);
  return out;
}

}  // namespace iobts
