// Small string helpers shared by the CLI-ish bench/example front-ends.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace iobts {

/// Split on a single-character delimiter; empty fields are kept.
std::vector<std::string> split(std::string_view text, char delim);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

bool startsWith(std::string_view text, std::string_view prefix);

/// Left-pad with spaces to at least `width` characters.
std::string padLeft(std::string_view text, std::size_t width);

/// Right-pad with spaces to at least `width` characters.
std::string padRight(std::string_view text, std::size_t width);

/// printf-style formatting into a std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace iobts
