// Online and batch statistics.
//
// RunningStats  -- Welford mean/variance/min/max, O(1) memory.
// Percentiles   -- exact percentiles over a retained sample vector.
// Histogram     -- fixed-width bins for quick distribution summaries.
// TimeSeries    -- (t, value) samples; supports step-function integration and
//                  resampling, used for the bandwidth-vs-time figures.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace iobts {

/// Welford online accumulator for mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for < 2 samples).
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  /// Merge another accumulator (parallel Welford / Chan et al.).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile over retained samples (linear interpolation, type-7).
class Percentiles {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t count() const noexcept { return samples_.size(); }

  /// p in [0, 100]. Returns 0 for an empty sample.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// first/last bin so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bin(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  double binLow(std::size_t i) const noexcept;
  double binHigh(std::size_t i) const noexcept;

  /// One-line ASCII sparkline of the distribution.
  std::string sparkline() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Piecewise-constant time series: value holds from sample i until sample
/// i+1. Used for B_r / T / B_L step functions.
class StepSeries {
 public:
  void add(double t, double value);
  std::size_t size() const noexcept { return points_.size(); }
  bool empty() const noexcept { return points_.empty(); }
  const std::vector<std::pair<double, double>>& points() const noexcept {
    return points_;
  }

  /// Value at time t (0 before the first sample).
  double at(double t) const noexcept;

  /// Integral of the step function over [t0, t1].
  double integrate(double t0, double t1) const noexcept;

  /// Maximum sampled value (0 if empty).
  double maxValue() const noexcept;

  /// Resample onto a uniform grid of n points spanning [t0, t1].
  std::vector<std::pair<double, double>> resample(double t0, double t1,
                                                  std::size_t n) const;

  /// Like resample, but each grid point carries the *maximum* value attained
  /// in its bin -- keeps short bursts visible on coarse grids.
  std::vector<std::pair<double, double>> resampleMax(double t0, double t1,
                                                     std::size_t n) const;

 private:
  std::vector<std::pair<double, double>> points_;  // sorted by construction
};

}  // namespace iobts
