// CSV writer for dumping experiment series (one file per figure/run).
//
// Fields containing commas, quotes or newlines are quoted per RFC 4180.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace iobts {

class CsvWriter {
 public:
  /// Open `path` for writing; throws CheckError if the file cannot be opened.
  explicit CsvWriter(const std::string& path);

  /// Write the header row (call once, first).
  void header(std::initializer_list<std::string_view> columns);
  void header(const std::vector<std::string>& columns);

  /// Append one row; column count must match the header if one was written.
  void row(std::initializer_list<std::string_view> fields);
  void row(const std::vector<std::string>& fields);

  /// Convenience: numeric row.
  void rowNumeric(const std::vector<double>& values);

  std::size_t rowsWritten() const noexcept { return rows_; }

 private:
  void writeFields(const std::vector<std::string>& fields);
  static std::string escape(std::string_view field);

  std::ofstream out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace iobts
