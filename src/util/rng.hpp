// Deterministic random-number generation.
//
// Every stochastic element of the simulation (PFS slowdown noise, compute
// jitter) draws from its own named stream so experiments replay bit-exactly
// regardless of event interleaving. Streams are derived from a master seed
// with SplitMix64; the generator itself is xoshiro256**.
#pragma once

#include <cstdint>
#include <string_view>

namespace iobts {

/// SplitMix64 step -- used for seeding and hashing stream names.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// FNV-1a hash of a stream name, for deriving per-stream seeds.
constexpr std::uint64_t hashName(std::string_view name) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// xoshiro256** 1.0 -- fast, high-quality, 2^256-1 period.
class Rng {
 public:
  /// Construct from a raw 64-bit seed (expanded via SplitMix64).
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    reseed(seed);
  }

  /// Construct a named sub-stream: seed ^ hash(name) -> independent stream.
  Rng(std::uint64_t master_seed, std::string_view stream_name) noexcept {
    reseed(master_seed ^ hashName(stream_name));
  }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniformInt(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto low = static_cast<std::uint64_t>(m);
    if (low < n) {
      const std::uint64_t threshold = (0ULL - n) % n;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Exponential with given mean (> 0).
  double exponential(double mean) noexcept;

  /// Standard normal via Box-Muller (no cached spare: keeps replay simple).
  double normal() noexcept;

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Lognormal such that the *median* multiplier is 1 and sigma controls the
  /// spread -- used for I/O slowdown noise (always >= 0).
  double lognormalFactor(double sigma) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace iobts
