// Minimal thread-safe leveled logger.
//
// Levels: Trace < Debug < Info < Warn < Error < Off.
// The global level defaults to Warn and can be overridden with the
// IOBTS_LOG_LEVEL environment variable (trace|debug|info|warn|error|off);
// the older IOBTS_LOG spelling is still honoured when IOBTS_LOG_LEVEL is
// unset.
//
// Usage:
//   IOBTS_LOG_INFO() << "solved " << n << " regions";
//
// The streamed message is assembled in a thread-local buffer and emitted
// atomically, so interleaved lines never mix.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace iobts::log {

enum class Level : int { Trace = 0, Debug, Info, Warn, Error, Off };

/// Current global log level (reads the environment on first use).
Level level() noexcept;

/// The level the environment requests right now: IOBTS_LOG_LEVEL, falling
/// back to IOBTS_LOG, falling back to Warn. Does not touch the cached
/// global level.
Level levelFromEnv() noexcept;

/// Override the global level programmatically (tests use this).
void setLevel(Level lvl) noexcept;

/// Redirect output (default: stderr). Pass nullptr to restore stderr.
void setSink(std::ostream* sink) noexcept;

/// Parse a level name; returns Warn for unknown names.
Level parseLevel(std::string_view name) noexcept;

const char* levelName(Level lvl) noexcept;

namespace detail {

/// RAII line builder: accumulates one message, emits it on destruction.
class LineBuilder {
 public:
  LineBuilder(Level lvl, const char* file, int line);
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder();

  template <class T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace iobts::log

#define IOBTS_LOG_AT(lvl)                          \
  if (::iobts::log::level() > (lvl)) {             \
  } else                                           \
    ::iobts::log::detail::LineBuilder((lvl), __FILE__, __LINE__)

#define IOBTS_LOG_TRACE() IOBTS_LOG_AT(::iobts::log::Level::Trace)
#define IOBTS_LOG_DEBUG() IOBTS_LOG_AT(::iobts::log::Level::Debug)
#define IOBTS_LOG_INFO() IOBTS_LOG_AT(::iobts::log::Level::Info)
#define IOBTS_LOG_WARN() IOBTS_LOG_AT(::iobts::log::Level::Warn)
#define IOBTS_LOG_ERROR() IOBTS_LOG_AT(::iobts::log::Level::Error)
