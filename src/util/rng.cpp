#include "util/rng.hpp"

#include <cmath>

namespace iobts {

double Rng::exponential(double mean) noexcept {
  // Inverse-CDF; clamp the uniform away from 0 to avoid log(0).
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal() noexcept {
  // Box-Muller. Draw both uniforms every call so the stream advances by a
  // fixed amount per sample (replay stability).
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double Rng::lognormalFactor(double sigma) noexcept {
  if (sigma <= 0.0) return 1.0;
  return std::exp(sigma * normal());
}

}  // namespace iobts
