// Terminal renderers for the reproduced figures.
//
// LineChart     -- multi-series x/y plot (Figs. 2, 8, 9, 10, 13, 14 series).
// StackedBars   -- 100 %-stacked horizontal bars (Figs. 6, 7, 11).
// GanttChart    -- job timelines (Fig. 1).
//
// The benches print these so the figure *shape* is visible directly in the
// harness output; raw numbers additionally go to CSV.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace iobts {

/// Multi-series line chart on a character canvas.
class LineChart {
 public:
  LineChart(std::size_t width, std::size_t height)
      : width_(width), height_(height) {}

  /// Add a named series; each series gets its own glyph.
  void addSeries(std::string name, std::vector<std::pair<double, double>> xy);

  /// Fix the y-axis range (otherwise auto-scaled to the data).
  void setYRange(double lo, double hi);
  void setTitle(std::string title) { title_ = std::move(title); }
  void setXLabel(std::string label) { x_label_ = std::move(label); }
  void setYLabel(std::string label) { y_label_ = std::move(label); }

  std::string render() const;

 private:
  struct Series {
    std::string name;
    std::vector<std::pair<double, double>> xy;
  };

  std::size_t width_;
  std::size_t height_;
  std::vector<Series> series_;
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  bool y_fixed_ = false;
  double y_lo_ = 0.0;
  double y_hi_ = 1.0;
};

/// 100%-stacked horizontal bars: one bar per row, segments sum to <= 100.
class StackedBars {
 public:
  explicit StackedBars(std::size_t bar_width = 60) : bar_width_(bar_width) {}

  /// Define segment names (order = stacking order); one glyph per segment.
  void setSegments(std::vector<std::string> names);

  /// Add one bar. `percentages` must have one entry per segment.
  void addBar(std::string label, std::vector<double> percentages);

  void setTitle(std::string title) { title_ = std::move(title); }

  std::string render() const;

 private:
  struct Bar {
    std::string label;
    std::vector<double> percentages;
  };

  std::size_t bar_width_;
  std::vector<std::string> segment_names_;
  std::vector<Bar> bars_;
  std::string title_;
};

/// Gantt-style timeline: one row per entity with [start, end) intervals.
class GanttChart {
 public:
  GanttChart(std::size_t width, double t_end)
      : width_(width), t_end_(t_end) {}

  void addRow(std::string label, double start, double end);
  void setTitle(std::string title) { title_ = std::move(title); }

  std::string render() const;

 private:
  struct Row {
    std::string label;
    double start;
    double end;
  };

  std::size_t width_;
  double t_end_;
  std::vector<Row> rows_;
  std::string title_;
};

}  // namespace iobts
