#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace iobts {

std::string Json::dump() const {
  std::string out;
  dumpTo(out, /*indent=*/-1, /*depth=*/0);
  return out;
}

std::string Json::pretty() const {
  std::string out;
  dumpTo(out, /*indent=*/2, /*depth=*/0);
  return out;
}

void Json::escapeTo(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::dumpTo(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
                 : std::string();
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                 : std::string();
  const char* nl = indent > 0 ? "\n" : "";

  if (isNull()) {
    out += "null";
  } else if (isBool()) {
    out += asBool() ? "true" : "false";
  } else if (isNumber()) {
    const double v = asNumber();
    char buf[64];
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
      std::snprintf(buf, sizeof(buf), "%.0f", v);
    } else if (std::isfinite(v)) {
      std::snprintf(buf, sizeof(buf), "%.12g", v);
    } else {
      // JSON has no inf/nan; serialize as null (documented behaviour).
      std::snprintf(buf, sizeof(buf), "null");
    }
    out += buf;
  } else if (isString()) {
    escapeTo(out, asString());
  } else if (isArray()) {
    const auto& arr = asArray();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    for (std::size_t i = 0; i < arr.size(); ++i) {
      out += pad;
      arr[i].dumpTo(out, indent, depth + 1);
      if (i + 1 < arr.size()) out += ',';
      out += nl;
    }
    out += close_pad;
    out += ']';
  } else {
    const auto& obj = asObject();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    std::size_t i = 0;
    for (const auto& [key, value] : obj) {
      out += pad;
      escapeTo(out, key);
      out += indent > 0 ? ": " : ":";
      value.dumpTo(out, indent, depth + 1);
      if (++i < obj.size()) out += ',';
      out += nl;
    }
    out += close_pad;
    out += '}';
  }
}

namespace {

// Recursive-descent JSON parser (standard JSON, UTF-8 passthrough).
struct JsonParser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& why) const {
    IOBTS_CHECK(false, "JSON parse error at offset " + std::to_string(pos) +
                           ": " + why);
    std::abort();  // unreachable; IOBTS_CHECK throws
  }

  void skipWhitespace() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool consumeLiteral(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Encode the code point as UTF-8 (surrogate pairs unsupported;
          // benchmark reports never emit them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parseNumber() {
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty()) {
      fail("malformed number '" + token + "'");
    }
    return Json(v);
  }

  Json parseValue() {
    skipWhitespace();
    const char c = peek();
    if (c == '{') {
      ++pos;
      JsonObject obj;
      skipWhitespace();
      if (peek() == '}') {
        ++pos;
        return Json(std::move(obj));
      }
      while (true) {
        skipWhitespace();
        std::string key = parseString();
        skipWhitespace();
        expect(':');
        obj[std::move(key)] = parseValue();
        skipWhitespace();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return Json(std::move(obj));
      }
    }
    if (c == '[') {
      ++pos;
      JsonArray arr;
      skipWhitespace();
      if (peek() == ']') {
        ++pos;
        return Json(std::move(arr));
      }
      while (true) {
        arr.push_back(parseValue());
        skipWhitespace();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return Json(std::move(arr));
      }
    }
    if (c == '"') return Json(parseString());
    if (consumeLiteral("null")) return Json(nullptr);
    if (consumeLiteral("true")) return Json(true);
    if (consumeLiteral("false")) return Json(false);
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return parseNumber();
    }
    fail("unexpected character");
  }
};

}  // namespace

Json Json::parse(std::string_view text) {
  JsonParser parser{text};
  Json value = parser.parseValue();
  parser.skipWhitespace();
  IOBTS_CHECK(parser.pos == parser.text.size(),
              "JSON parse error: trailing garbage after document");
  return value;
}

}  // namespace iobts
