#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace iobts {

std::string Json::dump() const {
  std::string out;
  dumpTo(out, /*indent=*/-1, /*depth=*/0);
  return out;
}

std::string Json::pretty() const {
  std::string out;
  dumpTo(out, /*indent=*/2, /*depth=*/0);
  return out;
}

void Json::escapeTo(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::dumpTo(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
                 : std::string();
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                 : std::string();
  const char* nl = indent > 0 ? "\n" : "";

  if (isNull()) {
    out += "null";
  } else if (isBool()) {
    out += asBool() ? "true" : "false";
  } else if (isNumber()) {
    const double v = asNumber();
    char buf[64];
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
      std::snprintf(buf, sizeof(buf), "%.0f", v);
    } else if (std::isfinite(v)) {
      std::snprintf(buf, sizeof(buf), "%.12g", v);
    } else {
      // JSON has no inf/nan; serialize as null (documented behaviour).
      std::snprintf(buf, sizeof(buf), "null");
    }
    out += buf;
  } else if (isString()) {
    escapeTo(out, asString());
  } else if (isArray()) {
    const auto& arr = asArray();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    for (std::size_t i = 0; i < arr.size(); ++i) {
      out += pad;
      arr[i].dumpTo(out, indent, depth + 1);
      if (i + 1 < arr.size()) out += ',';
      out += nl;
    }
    out += close_pad;
    out += ']';
  } else {
    const auto& obj = asObject();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    std::size_t i = 0;
    for (const auto& [key, value] : obj) {
      out += pad;
      escapeTo(out, key);
      out += indent > 0 ? ": " : ":";
      value.dumpTo(out, indent, depth + 1);
      if (++i < obj.size()) out += ',';
      out += nl;
    }
    out += close_pad;
    out += '}';
  }
}

}  // namespace iobts
