#include "util/units.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace iobts {

namespace {

std::string formatScaled(double value, const char* unit) {
  char buf[64];
  if (value >= 100.0 || value == std::floor(value)) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, unit);
  } else if (value >= 10.0) {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, unit);
  }
  return buf;
}

}  // namespace

std::string formatBytes(Bytes bytes) {
  const double b = static_cast<double>(bytes);
  if (b >= static_cast<double>(kTB)) return formatScaled(b / static_cast<double>(kTB), "TB");
  if (b >= static_cast<double>(kGB)) return formatScaled(b / static_cast<double>(kGB), "GB");
  if (b >= static_cast<double>(kMB)) return formatScaled(b / static_cast<double>(kMB), "MB");
  if (b >= static_cast<double>(kKB)) return formatScaled(b / static_cast<double>(kKB), "kB");
  return formatScaled(b, "B");
}

std::string formatBandwidth(BytesPerSec rate) {
  if (rate >= static_cast<double>(kTB)) return formatScaled(rate / static_cast<double>(kTB), "TB/s");
  if (rate >= static_cast<double>(kGB)) return formatScaled(rate / static_cast<double>(kGB), "GB/s");
  if (rate >= static_cast<double>(kMB)) return formatScaled(rate / static_cast<double>(kMB), "MB/s");
  if (rate >= static_cast<double>(kKB)) return formatScaled(rate / static_cast<double>(kKB), "kB/s");
  return formatScaled(rate, "B/s");
}

std::string formatDuration(Seconds seconds) {
  const double s = seconds;
  if (s >= 1.0) return formatScaled(s, "s");
  if (s >= 1e-3) return formatScaled(s * 1e3, "ms");
  if (s >= 1e-6) return formatScaled(s * 1e6, "us");
  return formatScaled(s * 1e9, "ns");
}

namespace {

double parseScaled(std::string_view text) {
  // number part
  size_t i = 0;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.' ||
          text[i] == '+' || text[i] == '-' || text[i] == 'e' || text[i] == 'E')) {
    // stop 'e'/'E' from eating a unit like "EB"; only treat as exponent if
    // followed by a digit or sign
    if ((text[i] == 'e' || text[i] == 'E') &&
        !(i + 1 < text.size() &&
          (std::isdigit(static_cast<unsigned char>(text[i + 1])) ||
           text[i + 1] == '+' || text[i + 1] == '-'))) {
      break;
    }
    ++i;
  }
  IOBTS_CHECK(i > 0, "no numeric prefix in '" + std::string(text) + "'");
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + i, value);
  IOBTS_CHECK(ec == std::errc() && ptr == text.data() + i,
              "malformed number in '" + std::string(text) + "'");

  // unit part
  std::string unit;
  for (size_t k = i; k < text.size(); ++k) {
    const char c = text[k];
    if (c == ' ' || c == '\t') continue;
    unit.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (unit.size() >= 2 && unit.substr(unit.size() - 2) == "/s") {
    unit.resize(unit.size() - 2);
  }
  if (unit.empty() || unit == "b") return value;
  struct Suffix {
    const char* name;
    double mult;
  };
  static constexpr std::array<Suffix, 14> kSuffixes{{
      {"kib", 1024.0},
      {"mib", 1024.0 * 1024},
      {"gib", 1024.0 * 1024 * 1024},
      {"tib", 1024.0 * 1024 * 1024 * 1024},
      {"kb", 1e3},
      {"mb", 1e6},
      {"gb", 1e9},
      {"tb", 1e12},
      {"k", 1e3},
      {"m", 1e6},
      {"g", 1e9},
      {"t", 1e12},
      {"ki", 1024.0},
      {"mi", 1024.0 * 1024},
  }};
  for (const auto& s : kSuffixes) {
    if (unit == s.name) return value * s.mult;
  }
  IOBTS_CHECK(false, "unknown unit suffix '" + unit + "'");
  return 0.0;  // unreachable
}

}  // namespace

Bytes parseBytes(std::string_view text) {
  const double v = parseScaled(text);
  IOBTS_CHECK(v >= 0.0, "byte count must be non-negative");
  return static_cast<Bytes>(v + 0.5);
}

BytesPerSec parseBandwidth(std::string_view text) {
  const double v = parseScaled(text);
  IOBTS_CHECK(v >= 0.0, "bandwidth must be non-negative");
  return v;
}

}  // namespace iobts
