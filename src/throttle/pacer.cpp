#include "throttle/pacer.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace iobts::throttle {

Pacer::Pacer(PacerConfig config) : config_(config) {
  IOBTS_CHECK(config_.subrequest_size > 0, "sub-request size must be > 0");
}

void Pacer::setLimit(std::optional<BytesPerSec> limit) {
  IOBTS_CHECK(!limit || *limit > 0.0, "limit must be positive");
  limit_ = limit;
  deficit_ = 0.0;
}

std::vector<Bytes> Pacer::split(Bytes total) const {
  std::vector<Bytes> chunks;
  if (total == 0) return chunks;
  if (!limit_ || total <= config_.subrequest_size) {
    chunks.push_back(total);
    return chunks;
  }
  Bytes remaining = total;
  chunks.reserve((total + config_.subrequest_size - 1) /
                 config_.subrequest_size);
  while (remaining > 0) {
    const Bytes piece = std::min(remaining, config_.subrequest_size);
    chunks.push_back(piece);
    remaining -= piece;
  }
  return chunks;
}

Seconds Pacer::requiredTime(Bytes bytes) const noexcept {
  if (!limit_) return 0.0;
  return static_cast<double>(bytes) / *limit_;
}

Seconds Pacer::onSubrequestDone(Bytes bytes, Seconds actual) {
  IOBTS_CHECK(actual >= 0.0, "durations must be non-negative");
  if (!limit_) return 0.0;
  ++stats_.subrequests;
  stats_.paced_bytes += bytes;
  const Seconds required = requiredTime(bytes);
  if (actual >= required) {
    // Case B: too slow -- bank the overshoot to shorten future sleeps.
    deficit_ += actual - required;
    stats_.deficit_banked += actual - required;
    return 0.0;
  }
  // Case A: too fast -- sleep the remainder, minus any banked deficit.
  Seconds sleep = required - actual;
  const Seconds offset = std::min(sleep, deficit_);
  sleep -= offset;
  deficit_ -= offset;
  if (sleep > 0.0) {
    ++stats_.sleeps;
    stats_.slept += sleep;
  }
  return sleep;
}

}  // namespace iobts::throttle
