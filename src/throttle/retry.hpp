// Bounded exponential backoff with jitter, shared by both I/O engines.
//
// Transient transfer faults (see fault::FaultPlan) are retried the way a
// production MPI-IO stack would retry an EIO from a flaky OST: exponential
// backoff from base_backoff up to max_backoff, a bounded number of retries,
// and an overall deadline across attempts. The policy is pure bookkeeping --
// RetryState hands back sleep durations and the caller owns the clock -- so
// the *same* policy drives the simulated AdioEngine (virtual clock) and the
// real rtio::IoThread (steady_clock), mirroring how throttle::Pacer serves
// both sides.
//
// Determinism: jitter is drawn from a splitmix64 stream seeded per operation
// (no shared RNG state), so retry schedules are reproducible and independent
// of how concurrent operations interleave.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "util/units.hpp"

namespace iobts::throttle {

struct RetryPolicy {
  /// Retries after the first attempt; 0 disables retrying (fail fast).
  std::uint32_t max_retries = 0;
  /// Backoff before the first retry.
  Seconds base_backoff = 1e-3;
  /// Growth factor per retry (>= 1).
  double multiplier = 2.0;
  /// Backoff ceiling.
  Seconds max_backoff = 1.0;
  /// Jitter fraction in [0, 1): each backoff is scaled by a factor drawn
  /// uniformly from [1 - jitter, 1 + jitter]. 0 = deterministic schedule.
  double jitter = 0.0;
  /// Overall elapsed-time budget across attempts: once the time since the
  /// first attempt reaches the deadline, no further retry is granted.
  Seconds deadline = std::numeric_limits<double>::infinity();

  bool enabled() const noexcept { return max_retries > 0; }

  /// util::check-style eager validation (throws CheckError on bad fields).
  void validate() const;
};

/// Per-operation retry bookkeeping. Construct one per I/O operation; call
/// nextBackoff() after each failed attempt.
class RetryState {
 public:
  RetryState() = default;
  RetryState(const RetryPolicy& policy, std::uint64_t seed)
      : policy_(policy), jitter_state_(seed) {}

  /// Record a failed attempt. Returns the backoff to sleep before the next
  /// attempt, or nullopt when the retry budget or the deadline (judged
  /// against `elapsed`, the time since the first attempt began) is
  /// exhausted. The undecorated (jitter-free) backoff sequence is
  /// non-decreasing and capped at max_backoff.
  std::optional<Seconds> nextBackoff(Seconds elapsed);

  /// Retries granted so far (== failed attempts that were retried).
  std::uint32_t retriesUsed() const noexcept { return retries_; }

 private:
  RetryPolicy policy_{};
  std::uint32_t retries_ = 0;
  std::uint64_t jitter_state_ = 0x9e3779b97f4a7c15ULL;
};

}  // namespace iobts::throttle
