// The paper's bandwidth-limitation algorithm (Sec. V), engine-agnostic.
//
// The MPICH/ROMIO extension limits an I/O request's throughput like this:
//
//   1. split the request into sub-requests of a predefined size S;
//   2. per sub-request compute the required time  dt = S / L  from the
//      current limit L;
//   3. execute the sub-request as a blocking operation and compare the
//      actual execution time with the required time:
//        Case A: actual < required -> sleep the remainder;
//        Case B: actual > required -> accumulate the overshoot as a deficit
//                that reduces future sleeps.
//
// The Pacer implements steps 1-3 as pure bookkeeping so the *same* algorithm
// drives both the simulated ADIO driver (virtual clock) and the real I/O
// thread in rtio (steady_clock). The caller owns the clock: it reports each
// sub-request's actual duration and receives the sleep to perform.
//
// Retry interplay (see retry.hpp): a failed attempt's wire time and the
// backoff slept before the next attempt are banked as Case-B deficit via
// onSubrequestDone(0, duration), so a paced operation's elapsed time stays
// ~max(required, actual) across retries instead of paying twice.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/units.hpp"

namespace iobts::throttle {

struct PacerConfig {
  /// Sub-request size (the paper's "predefined size"); requests smaller than
  /// this are executed whole.
  Bytes subrequest_size = 4 * kMiB;
};

/// Lifetime totals of the pacing algorithm's decisions, for the
/// observability plane (exported into a MetricsRegistry by the engines that
/// own a Pacer). Plain increments on the pacing path; never reset by
/// setLimit so they survive limit changes.
struct PacerStats {
  std::uint64_t subrequests = 0;   // onSubrequestDone calls under a limit
  std::uint64_t sleeps = 0;        // Case-A outcomes with a positive sleep
  Seconds slept = 0.0;             // total sleep returned (post-deficit)
  Seconds deficit_banked = 0.0;    // total Case-B overshoot banked
  Bytes paced_bytes = 0;           // payload bytes reported under a limit
};

class Pacer {
 public:
  Pacer() = default;
  explicit Pacer(PacerConfig config);

  /// Set or clear the throughput limit. Clearing also clears the deficit
  /// (the old debt is meaningless under a new regime).
  void setLimit(std::optional<BytesPerSec> limit);
  std::optional<BytesPerSec> limit() const noexcept { return limit_; }
  bool limited() const noexcept { return limit_.has_value(); }

  const PacerConfig& config() const noexcept { return config_; }

  /// Split a request into sub-request sizes (step 1). The final chunk holds
  /// the remainder. Unlimited requests are not split.
  std::vector<Bytes> split(Bytes total) const;

  /// Required execution time for a sub-request under the current limit
  /// (step 2); zero when unlimited.
  Seconds requiredTime(Bytes bytes) const noexcept;

  /// Report a finished sub-request (step 3). Returns the sleep duration to
  /// apply now (Case A), possibly shortened by accumulated deficit (Case B).
  Seconds onSubrequestDone(Bytes bytes, Seconds actual);

  /// Outstanding Case-B debt in seconds.
  Seconds deficit() const noexcept { return deficit_; }
  void resetDeficit() noexcept { deficit_ = 0.0; }

  const PacerStats& stats() const noexcept { return stats_; }

 private:
  PacerConfig config_{};
  std::optional<BytesPerSec> limit_{};
  Seconds deficit_ = 0.0;
  PacerStats stats_{};
};

}  // namespace iobts::throttle
