#include "throttle/retry.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace iobts::throttle {

void RetryPolicy::validate() const {
  IOBTS_CHECK(base_backoff >= 0.0 && std::isfinite(base_backoff),
              "base backoff must be non-negative and finite");
  IOBTS_CHECK(multiplier >= 1.0 && std::isfinite(multiplier),
              "backoff multiplier must be >= 1");
  IOBTS_CHECK(max_backoff >= base_backoff && !std::isnan(max_backoff),
              "max backoff must be >= base backoff");
  IOBTS_CHECK(jitter >= 0.0 && jitter < 1.0,
              "jitter fraction must lie in [0, 1)");
  // A zero deadline is legal and terminal: it expires before any first
  // attempt completes, so nextBackoff() always returns a clean "no retry".
  IOBTS_CHECK(deadline >= 0.0 && !std::isnan(deadline),
              "retry deadline must be non-negative");
}

std::optional<Seconds> RetryState::nextBackoff(Seconds elapsed) {
  // Terminal verdicts, in priority order: a zero retry budget fails fast,
  // and a deadline at or before the first attempt's completion (including
  // elapsed == +inf against an infinite deadline) never grants a retry.
  if (retries_ >= policy_.max_retries) return std::nullopt;
  if (elapsed >= policy_.deadline) return std::nullopt;
  Seconds backoff = policy_.base_backoff;
  // pow() keeps the sequence exact for whole-number exponents and saturates
  // cleanly at the cap; retries_ is small by construction.
  if (retries_ > 0) {
    backoff *= std::pow(policy_.multiplier, static_cast<double>(retries_));
  }
  backoff = std::min(backoff, policy_.max_backoff);
  // Overflow near kInfiniteTime: with an unbounded max_backoff the
  // exponential can saturate to +inf. An infinite (or NaN) sleep would wedge
  // the caller's clock forever, which is a wrap-around failure, not a
  // schedule -- declare the budget exhausted instead.
  if (!std::isfinite(backoff)) return std::nullopt;
  ++retries_;
  if (policy_.jitter > 0.0 && backoff > 0.0) {
    const double u =
        static_cast<double>(splitmix64(jitter_state_) >> 11) * 0x1.0p-53;
    backoff *= 1.0 + policy_.jitter * (2.0 * u - 1.0);
  }
  return backoff;
}

}  // namespace iobts::throttle
