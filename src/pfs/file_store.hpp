// Metadata-only file store for the simulated PFS.
//
// Workloads at cluster scale write hundreds of gigabytes of synthetic data;
// holding the bytes is impossible and unnecessary. Instead every write
// records an extent [offset, offset+len) carrying a 64-bit content tag the
// writer derives from whatever it "wrote". A read returns the extents it
// covers, so HACC-IO's verify block can check that the data it reads back is
// exactly the data it wrote (tag equality over the full range) -- real
// verification semantics without the bytes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace iobts::pfs {

using ContentTag = std::uint64_t;

struct Extent {
  Bytes offset = 0;
  Bytes length = 0;
  ContentTag tag = 0;

  Bytes end() const noexcept { return offset + length; }
  friend bool operator==(const Extent&, const Extent&) = default;
};

class FileStore {
 public:
  /// Create an empty file; returns false if it already exists.
  bool create(const std::string& path);

  /// Delete a file; returns false if it does not exist.
  bool remove(const std::string& path);

  bool exists(const std::string& path) const;
  std::size_t fileCount() const noexcept { return files_.size(); }

  /// Logical size = end of the furthest extent (0 for empty/unknown files).
  Bytes size(const std::string& path) const;

  /// Record a write. Overlapping older extents are split/overwritten, exactly
  /// like bytes in a real file. Auto-creates the file.
  void write(const std::string& path, Bytes offset, Bytes length,
             ContentTag tag);

  /// Extents overlapping [offset, offset+length), clipped to that window and
  /// ordered by offset. Gaps (never-written holes) are simply absent.
  std::vector<Extent> read(const std::string& path, Bytes offset,
                           Bytes length) const;

  /// True iff [offset, offset+length) is fully covered by extents carrying
  /// exactly `tag` -- the verify-block primitive.
  bool verify(const std::string& path, Bytes offset, Bytes length,
              ContentTag tag) const;

  /// Total bytes currently recorded across all files.
  Bytes totalBytes() const noexcept;

 private:
  // Key = extent start offset; extents never overlap and never touch with
  // equal tags only by coincidence (no merging needed for correctness).
  using ExtentMap = std::map<Bytes, Extent>;
  std::map<std::string, ExtentMap> files_;
};

}  // namespace iobts::pfs
