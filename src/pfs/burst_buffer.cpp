#include "pfs/burst_buffer.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace iobts::pfs {

BurstBuffer::BurstBuffer(sim::Simulation& simulation, SharedLink& pfs,
                         StreamId stream, BurstBufferConfig config)
    : sim_(simulation),
      pfs_(pfs),
      stream_(stream),
      config_(config),
      drain_pacer_(throttle::PacerConfig{.subrequest_size = config.drain_chunk}),
      queue_(simulation) {
  IOBTS_CHECK(config_.capacity > 0, "burst buffer needs capacity");
  IOBTS_CHECK(config_.absorb_rate > 0.0, "absorb rate must be positive");
  IOBTS_CHECK(config_.drain_chunk > 0, "drain chunk must be positive");
  drain_pacer_.setLimit(config_.drain_limit);
}

sim::Task<BurstBuffer::WriteResult> BurstBuffer::write(Bytes bytes) {
  IOBTS_CHECK(!stopping_, "write after stop");
  WriteResult result;
  Bytes remaining = bytes;
  while (remaining > 0) {
    const Bytes free_space = config_.capacity - occupancy_;
    if (free_space == 0) {
      // Buffer full: write the remainder through to the PFS synchronously
      // (the visible-burst case a correctly sized drain limit avoids).
      co_await pfs_.transfer(Channel::Write, stream_, remaining);
      result.spilled += remaining;
      spilled_total_ += remaining;
      remaining = 0;
      break;
    }
    const Bytes take = std::min(remaining, free_space);
    co_await sim_.delay(static_cast<double>(take) / config_.absorb_rate);
    occupancy_ += take;
    result.absorbed += take;
    for (Bytes queued = 0; queued < take; queued += config_.drain_chunk) {
      queue_.send(std::min<Bytes>(config_.drain_chunk, take - queued));
    }
    remaining -= take;
  }
  co_return result;
}

sim::Task<void> BurstBuffer::drainLoop() {
  while (true) {
    const Bytes chunk = co_await queue_.recv();
    if (chunk == 0) break;  // stop sentinel (queued behind remaining work)
    const sim::Time t0 = sim_.now();
    co_await pfs_.transfer(Channel::Write, stream_, chunk);
    const Seconds sleep =
        drain_pacer_.onSubrequestDone(chunk, sim_.now() - t0);
    if (sleep > 0.0) co_await sim_.delay(sleep);
    occupancy_ -= chunk;
    drained_total_ += chunk;
    if (occupancy_ == 0) {
      for (sim::Trigger* waiter : flush_waiters_) waiter->fire();
      flush_waiters_.clear();
    }
  }
}

void BurstBuffer::requestStop() {
  if (stopping_) return;
  stopping_ = true;
  queue_.send(0);
}

sim::Task<void> BurstBuffer::flush() {
  while (occupancy_ > 0) {
    sim::Trigger drained(sim_);
    flush_waiters_.push_back(&drained);
    co_await drained.wait();
  }
}

BytesPerSec BurstBuffer::requiredDrainBandwidth(Bytes bytes_per_period,
                                                Seconds period) {
  IOBTS_CHECK(period > 0.0, "period must be positive");
  return static_cast<double>(bytes_per_period) / period;
}

}  // namespace iobts::pfs
