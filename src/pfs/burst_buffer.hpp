// Node-local burst buffer (the paper's future work: "proposing a similar
// definition for synchronous I/O in the presence of burst buffers").
//
// A burst buffer absorbs writes at node-local (NVMe-class) speed and drains
// them to the shared PFS in the background. With one in place even a
// *synchronous* write behaves like the paper's asynchronous I/O: the
// application only pays the absorb time, while the drain consumes PFS
// bandwidth in the background of the following compute phase. The natural
// extension of Eq. (1) is then
//
//   B_sync = bytes_per_period / period
//
// -- the drain rate that keeps the buffer from filling for a periodic
// workload (requiredDrainBandwidth below). Setting drain_limit to that
// value flattens the burst exactly as the async-I/O limiter does.
#pragma once

#include <optional>
#include <vector>

#include "pfs/shared_link.hpp"
#include "sim/sync.hpp"
#include "throttle/pacer.hpp"

namespace iobts::pfs {

struct BurstBufferConfig {
  Bytes capacity = 64 * kGiB;      // buffer size
  BytesPerSec absorb_rate = 6e9;   // node-local write speed
  /// Cap on the background drain rate into the PFS (the sync-I/O analog of
  /// the paper's bandwidth limit). nullopt = drain at the PFS fair share.
  std::optional<BytesPerSec> drain_limit{};
  /// Drain granularity.
  Bytes drain_chunk = 8 * kMiB;
};

class BurstBuffer {
 public:
  struct WriteResult {
    Bytes absorbed = 0;  // bytes taken at absorb_rate
    Bytes spilled = 0;   // bytes written through to the PFS (buffer full)
  };

  BurstBuffer(sim::Simulation& simulation, SharedLink& pfs, StreamId stream,
              BurstBufferConfig config);
  BurstBuffer(const BurstBuffer&) = delete;
  BurstBuffer& operator=(const BurstBuffer&) = delete;

  /// Absorb a write. Blocks for the absorb time of whatever fits; bytes
  /// beyond the free capacity spill synchronously to the PFS.
  sim::Task<WriteResult> write(Bytes bytes);

  /// Background drainer; spawn once (the World does this per rank).
  sim::Task<void> drainLoop();

  /// Finish draining queued bytes, then let drainLoop() return.
  void requestStop();

  /// Await an empty buffer (e.g. at finalize).
  sim::Task<void> flush();

  Bytes occupancy() const noexcept { return occupancy_; }
  Bytes spilledBytes() const noexcept { return spilled_total_; }
  Bytes drainedBytes() const noexcept { return drained_total_; }
  const BurstBufferConfig& config() const noexcept { return config_; }

  /// Eq. (1) for synchronous I/O behind a burst buffer: the drain bandwidth
  /// that keeps a periodic workload's buffer level bounded.
  static BytesPerSec requiredDrainBandwidth(Bytes bytes_per_period,
                                            Seconds period);

 private:
  sim::Simulation& sim_;
  SharedLink& pfs_;
  StreamId stream_;
  BurstBufferConfig config_;
  throttle::Pacer drain_pacer_;

  Bytes occupancy_ = 0;
  Bytes spilled_total_ = 0;
  Bytes drained_total_ = 0;
  bool stopping_ = false;
  sim::Mailbox<Bytes> queue_;  // drain chunks; 0 = stop sentinel
  std::vector<sim::Trigger*> flush_waiters_;
};

}  // namespace iobts::pfs
