#include "pfs/shared_link.hpp"

#include <algorithm>
#include <cmath>

#include "pfs/fair_share.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace iobts::pfs {

namespace {
// A transfer is "drained" when less than half a byte remains (floating-point
// residue from rate * dt settlement).
constexpr double kDrainEpsilonBytes = 0.5;
}  // namespace

const char* channelName(Channel ch) noexcept {
  return ch == Channel::Read ? "read" : "write";
}

struct SharedLink::Transfer {
  explicit Transfer(sim::Simulation& simulation) : done(simulation) {}

  StreamId stream = 0;
  Bytes total = 0;
  double remaining = 0.0;
  sim::Time start = 0.0;
  sim::Time last_settle = 0.0;
  double rate = 0.0;
  std::optional<BytesPerSec> noise_cap{};
  sim::Trigger done;
};

struct SharedLink::Stream {
  std::string name;
  double weight = 1.0;
  std::optional<BytesPerSec> cap{};
  Bytes bytes_moved = 0;
  bool record = false;
  StepSeries rate_series[kChannels];
  std::size_t active[kChannels] = {0, 0};
};

struct SharedLink::ChannelState {
  Channel ch = Channel::Read;
  BytesPerSec capacity = 0.0;
  std::vector<std::unique_ptr<Transfer>> active;
  bool dirty_scheduled = false;
  sim::Time last_resolve = -1.0;
  bool ever_resolved = false;
  std::uint64_t sweep_generation = 0;
  Bytes bytes_moved = 0;
  StepSeries total_series;
  bool contended = false;
};

SharedLink::SharedLink(sim::Simulation& simulation, LinkConfig config)
    : sim_(simulation),
      config_(config),
      noise_rng_(config.seed, "pfs-noise") {
  IOBTS_CHECK(config_.read_capacity >= 0.0 && config_.write_capacity >= 0.0,
              "capacities must be non-negative");
  IOBTS_CHECK(config_.recompute_quantum >= 0.0,
              "recompute quantum must be non-negative");
  IOBTS_CHECK(config_.client_rate_cap >= 0.0,
              "client rate cap must be non-negative");
  for (std::size_t c = 0; c < kChannels; ++c) {
    channels_[c] = std::make_unique<ChannelState>();
    channels_[c]->ch = static_cast<Channel>(c);
  }
  channels_[static_cast<int>(Channel::Read)]->capacity = config_.read_capacity;
  channels_[static_cast<int>(Channel::Write)]->capacity =
      config_.write_capacity;
}

SharedLink::~SharedLink() = default;

SharedLink::ChannelState& SharedLink::chan(Channel channel) noexcept {
  return *channels_[static_cast<int>(channel)];
}

const SharedLink::ChannelState& SharedLink::chan(
    Channel channel) const noexcept {
  return *channels_[static_cast<int>(channel)];
}

StreamId SharedLink::createStream(std::string name, double weight) {
  IOBTS_CHECK(weight > 0.0, "stream weight must be positive");
  auto stream = std::make_unique<Stream>();
  stream->name = std::move(name);
  stream->weight = weight;
  streams_.push_back(std::move(stream));
  return static_cast<StreamId>(streams_.size() - 1);
}

void SharedLink::setStreamCap(StreamId stream,
                              std::optional<BytesPerSec> cap) {
  IOBTS_CHECK(stream < streams_.size(), "unknown stream");
  IOBTS_CHECK(!cap || *cap >= 0.0, "cap must be non-negative");
  streams_[stream]->cap = cap;
  for (std::size_t c = 0; c < kChannels; ++c) {
    if (streams_[stream]->active[c] > 0) markDirty(static_cast<Channel>(c));
  }
}

std::optional<BytesPerSec> SharedLink::streamCap(StreamId stream) const {
  IOBTS_CHECK(stream < streams_.size(), "unknown stream");
  return streams_[stream]->cap;
}

void SharedLink::setStreamWeight(StreamId stream, double weight) {
  IOBTS_CHECK(stream < streams_.size(), "unknown stream");
  IOBTS_CHECK(weight > 0.0, "stream weight must be positive");
  streams_[stream]->weight = weight;
  for (std::size_t c = 0; c < kChannels; ++c) {
    if (streams_[stream]->active[c] > 0) markDirty(static_cast<Channel>(c));
  }
}

double SharedLink::streamWeight(StreamId stream) const {
  IOBTS_CHECK(stream < streams_.size(), "unknown stream");
  return streams_[stream]->weight;
}

const std::string& SharedLink::streamName(StreamId stream) const {
  IOBTS_CHECK(stream < streams_.size(), "unknown stream");
  return streams_[stream]->name;
}

void SharedLink::setRecordStream(StreamId stream, bool record) {
  IOBTS_CHECK(stream < streams_.size(), "unknown stream");
  streams_[stream]->record = record;
}

sim::Task<TransferResult> SharedLink::transfer(Channel channel,
                                               StreamId stream, Bytes bytes) {
  IOBTS_CHECK(stream < streams_.size(), "unknown stream");
  TransferResult result;
  result.start = sim_.now();
  result.end = sim_.now();
  result.bytes = bytes;
  if (bytes == 0) co_return result;

  ChannelState& cs = chan(channel);
  IOBTS_CHECK(cs.capacity > 0.0, "transfer on a zero-capacity channel");

  auto transfer_obj = std::make_unique<Transfer>(sim_);
  Transfer& t = *transfer_obj;
  t.stream = stream;
  t.total = bytes;
  t.remaining = static_cast<double>(bytes);
  t.start = sim_.now();
  t.last_settle = sim_.now();
  if (config_.noise_sigma > 0.0) {
    const double factor =
        std::min(1.0, noise_rng_.lognormalFactor(config_.noise_sigma));
    const BytesPerSec reference = config_.noise_reference_rate > 0.0
                                      ? config_.noise_reference_rate
                                      : cs.capacity;
    t.noise_cap = std::min(cs.capacity, reference * factor);
  }
  cs.active.push_back(std::move(transfer_obj));
  ++streams_[stream]->active[static_cast<int>(channel)];
  markDirty(channel);

  co_await t.done.wait();
  result.end = sim_.now();
  co_return result;
}

void SharedLink::markDirty(Channel channel) {
  ChannelState& cs = chan(channel);
  if (cs.dirty_scheduled) return;
  cs.dirty_scheduled = true;
  sim::Time at = 0.0;
  if (cs.ever_resolved && config_.recompute_quantum > 0.0) {
    at = std::max(0.0, cs.last_resolve + config_.recompute_quantum -
                           sim_.now());
  }
  sim_.post(at, [this, channel] {
    chan(channel).dirty_scheduled = false;
    resolve(channel);
  });
}

void SharedLink::resolve(Channel channel) {
  ChannelState& cs = chan(channel);
  const sim::Time now = sim_.now();
  cs.last_resolve = now;
  cs.ever_resolved = true;
  // Invalidate any in-flight completion sweep; we reschedule below.
  ++cs.sweep_generation;

  // 1. Settle progress since each transfer's last settlement.
  for (auto& t : cs.active) {
    const sim::Time dt = now - t->last_settle;
    if (dt > 0.0 && t->rate > 0.0) {
      t->remaining = std::max(0.0, t->remaining - t->rate * dt);
    }
    t->last_settle = now;
  }

  // 2. Complete drained transfers (fires waiters at the current time).
  for (std::size_t i = 0; i < cs.active.size();) {
    Transfer& t = *cs.active[i];
    if (t.remaining <= kDrainEpsilonBytes) {
      cs.bytes_moved += t.total;
      Stream& s = *streams_[t.stream];
      s.bytes_moved += t.total;
      --s.active[static_cast<int>(channel)];
      t.done.fire();
      cs.active.erase(cs.active.begin() + static_cast<long>(i));
    } else {
      ++i;
    }
  }

  // 3. Re-solve the two-level weighted max-min allocation.
  //    Level 1: streams (weight = stream weight, cap = stream cap combined
  //    with the sum of its transfers' noise caps).
  //    Level 2: a stream's transfers split its allocation equally, subject
  //    to per-transfer noise caps.
  std::vector<StreamId> stream_ids;
  std::vector<std::vector<Transfer*>> stream_transfers;
  {
    std::vector<int> slot(streams_.size(), -1);
    for (auto& t : cs.active) {
      if (slot[t->stream] < 0) {
        slot[t->stream] = static_cast<int>(stream_ids.size());
        stream_ids.push_back(t->stream);
        stream_transfers.emplace_back();
      }
      stream_transfers[static_cast<std::size_t>(slot[t->stream])].push_back(
          t.get());
    }
  }

  // Congestion: aggregate efficiency drops with concurrent writers.
  double effective_capacity = cs.capacity;
  if (config_.congestion_gamma > 0.0 && cs.active.size() > 1) {
    effective_capacity /=
        1.0 + config_.congestion_gamma *
                  static_cast<double>(cs.active.size() - 1);
  }

  double total_rate = 0.0;
  double total_demand = 0.0;
  if (!stream_ids.empty()) {
    std::vector<FairShareItem> level1(stream_ids.size());
    for (std::size_t k = 0; k < stream_ids.size(); ++k) {
      const Stream& s = *streams_[stream_ids[k]];
      level1[k].weight = s.weight;
      std::optional<BytesPerSec> cap = s.cap;
      if (config_.client_rate_cap > 0.0) {
        const BytesPerSec client_cap = config_.client_rate_cap * s.weight;
        cap = cap ? std::min(*cap, client_cap) : client_cap;
      }
      if (config_.noise_sigma > 0.0) {
        double noise_sum = 0.0;
        for (const Transfer* t : stream_transfers[k]) {
          noise_sum += t->noise_cap.value_or(cs.capacity);
        }
        cap = cap ? std::min(*cap, noise_sum) : noise_sum;
      }
      level1[k].cap = cap;
      total_demand += cap ? std::min(*cap, cs.capacity) : cs.capacity;
    }
    const FairShareResult shares = fairShare(level1, effective_capacity);

    for (std::size_t k = 0; k < stream_ids.size(); ++k) {
      auto& transfers = stream_transfers[k];
      std::vector<FairShareItem> level2(transfers.size());
      for (std::size_t j = 0; j < transfers.size(); ++j) {
        level2[j].weight = 1.0;
        level2[j].cap = transfers[j]->noise_cap;
      }
      const FairShareResult rates =
          fairShare(level2, shares.allocation[k]);
      for (std::size_t j = 0; j < transfers.size(); ++j) {
        transfers[j]->rate = rates.allocation[j];
      }
      total_rate += rates.total;
      Stream& s = *streams_[stream_ids[k]];
      if (s.record) {
        s.rate_series[static_cast<int>(channel)].add(now, rates.total);
      }
    }
  }
  // Opted-in streams with no active transfers drop to zero in the record.
  for (auto& sp : streams_) {
    Stream& s = *sp;
    if (s.record && s.active[static_cast<int>(channel)] == 0) {
      auto& series = s.rate_series[static_cast<int>(channel)];
      if (!series.empty() && series.points().back().second != 0.0) {
        series.add(now, 0.0);
      }
    }
  }

  cs.contended =
      stream_ids.size() >= 2 && total_demand > cs.capacity * 1.000001;
  if (config_.record_total) cs.total_series.add(now, total_rate);

  // 4. Schedule the next completion sweep.
  sim::Time next = std::numeric_limits<double>::infinity();
  for (const auto& t : cs.active) {
    if (t->rate > 0.0) {
      next = std::min(next, t->remaining / t->rate);
    }
  }
  if (std::isfinite(next)) {
    const std::uint64_t gen = cs.sweep_generation;
    sim_.post(next, [this, channel, gen] {
      if (chan(channel).sweep_generation == gen) resolve(channel);
    });
  } else if (!cs.active.empty()) {
    IOBTS_LOG_WARN() << "channel " << channelName(channel) << " has "
                     << cs.active.size()
                     << " active transfers but zero aggregate rate";
  }
}

BytesPerSec SharedLink::capacity(Channel channel) const noexcept {
  return chan(channel).capacity;
}

std::size_t SharedLink::activeTransfers(Channel channel) const noexcept {
  return chan(channel).active.size();
}

Bytes SharedLink::bytesMoved(Channel channel) const noexcept {
  return chan(channel).bytes_moved;
}

Bytes SharedLink::streamBytes(StreamId stream) const {
  IOBTS_CHECK(stream < streams_.size(), "unknown stream");
  return streams_[stream]->bytes_moved;
}

std::size_t SharedLink::streamCount() const noexcept {
  return streams_.size();
}

const StepSeries& SharedLink::totalRateSeries(Channel channel) const {
  return chan(channel).total_series;
}

const StepSeries& SharedLink::streamRateSeries(StreamId stream,
                                               Channel channel) const {
  IOBTS_CHECK(stream < streams_.size(), "unknown stream");
  return streams_[stream]->rate_series[static_cast<int>(channel)];
}

bool SharedLink::contended(Channel channel) const noexcept {
  return chan(channel).contended;
}

}  // namespace iobts::pfs
