#include "pfs/shared_link.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pfs/fair_share.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace iobts::pfs {

namespace {
// A transfer is "drained" when less than half a byte remains (floating-point
// residue from rate * dt settlement).
constexpr double kDrainEpsilonBytes = 0.5;
}  // namespace

struct SharedLink::Transfer {
  explicit Transfer(sim::Simulation& simulation) : done(simulation) {}

  StreamId stream = 0;
  Bytes total = 0;
  double remaining = 0.0;
  sim::Time start = 0.0;
  sim::Time last_settle = 0.0;
  double rate = 0.0;
  std::optional<BytesPerSec> noise_cap{};
  /// Monotone per-link id; keys the deterministic fault verdict.
  std::uint64_t serial = 0;
  /// Caller's journey id (0 = none); ties the settled span into the
  /// request's flow chain.
  std::uint64_t journey = 0;
  /// Points into the awaiting transfer() frame's TransferResult.status. The
  /// frame is suspended at done.wait() until fire() resumes it through the
  /// event queue, so the sink outlives this Transfer object (which is
  /// destroyed at the end of the completion sweep, before resumption).
  TransferStatus* status_sink = nullptr;
  sim::Trigger done;
};

struct SharedLink::Stream {
  std::string name;
  double weight = 1.0;
  std::optional<BytesPerSec> cap{};
  Bytes bytes_moved = 0;
  bool record = false;
  StepSeries rate_series[kChannels];
  std::size_t active[kChannels] = {0, 0};
};

struct SharedLink::ChannelState {
  Channel ch = Channel::Read;
  BytesPerSec capacity = 0.0;
  std::vector<std::unique_ptr<Transfer>> active;
  bool dirty_scheduled = false;
  sim::Time last_resolve = -1.0;
  bool ever_resolved = false;
  std::uint64_t sweep_generation = 0;
  Bytes bytes_moved = 0;
  StepSeries total_series;
  StepSeries active_series;
  bool contended = false;

  // --- Fault-plane bookkeeping -------------------------------------------
  // Compound factor of the degradation/blackout windows active right now
  // (product; 1.0 = healthy, 0.0 = blackout). Recomputed from scratch at
  // every window edge so it is fp-exact and order-independent.
  double degrade_factor = 1.0;
  std::uint64_t faulted_transfers = 0;
  std::uint64_t capacity_edges = 0;

  // --- Lazy-settle bookkeeping ------------------------------------------
  // Earliest virtual time at which any active transfer could cross the
  // drain threshold (remaining <= kDrainEpsilonBytes) under current rates.
  // Re-derived on every executed resolve from the same loop that schedules
  // the completion sweep. A resolve strictly before this bound with
  // input_version == solved_version cannot change anything. -inf until the
  // first resolve so the bound never suppresses it.
  sim::Time next_interesting = -std::numeric_limits<double>::infinity();
  std::uint64_t resolves_executed = 0;
  std::uint64_t resolves_skipped = 0;
  std::uint64_t full_solves = 0;

  // --- Incremental-resolve bookkeeping ----------------------------------
  // The solve inputs (stream membership, caps, weights, noise caps) are
  // versioned; a resolve whose inputs match the last solved version only
  // settles progress and reschedules the sweep (rates cannot have changed).
  std::uint64_t input_version = 1;
  std::uint64_t solved_version = 0;

  // Persistent scratch for the two-level solve. The stream->group slot map
  // is epoch-stamped so it is valid without an O(total streams) clear per
  // resolve; all other buffers are reused across resolves (allocation-free
  // once warm).
  std::uint32_t grouping_epoch = 0;
  std::vector<std::uint32_t> slot_epoch;    // per stream id
  std::vector<std::uint32_t> slot;          // per stream id -> group index
  std::vector<StreamId> group_streams;      // group index -> stream id
  std::vector<std::uint32_t> group_count;   // transfers per group
  std::vector<std::uint32_t> group_offset;  // prefix offsets into `grouped`
  std::vector<Transfer*> grouped;           // transfers, grouped by stream
  std::vector<FairShareItem> level1;
  std::vector<BytesPerSec> level1_alloc;
  std::vector<FairShareItem> level2;
  std::vector<BytesPerSec> level2_alloc;
  FairShareScratch fair_share_scratch;
  std::vector<std::unique_ptr<Transfer>> completed_scratch;
};

SharedLink::SharedLink(sim::Simulation& simulation, LinkConfig config)
    : sim_(simulation),
      config_(config),
      noise_rng_(config.seed, "pfs-noise") {
  IOBTS_CHECK(config_.read_capacity > 0.0 &&
                  std::isfinite(config_.read_capacity),
              "read capacity must be positive and finite");
  IOBTS_CHECK(config_.write_capacity > 0.0 &&
                  std::isfinite(config_.write_capacity),
              "write capacity must be positive and finite");
  IOBTS_CHECK(config_.noise_sigma >= 0.0 && !std::isnan(config_.noise_sigma),
              "noise sigma must be non-negative");
  IOBTS_CHECK(config_.noise_reference_rate >= 0.0 &&
                  !std::isnan(config_.noise_reference_rate),
              "noise reference rate must be non-negative");
  IOBTS_CHECK(config_.congestion_gamma >= 0.0 &&
                  !std::isnan(config_.congestion_gamma),
              "congestion gamma must be non-negative");
  IOBTS_CHECK(config_.recompute_quantum >= 0.0,
              "recompute quantum must be non-negative");
  IOBTS_CHECK(config_.client_rate_cap >= 0.0,
              "client rate cap must be non-negative");
  for (std::size_t c = 0; c < kChannels; ++c) {
    channels_[c] = std::make_unique<ChannelState>();
    channels_[c]->ch = static_cast<Channel>(c);
  }
  channels_[static_cast<int>(Channel::Read)]->capacity = config_.read_capacity;
  channels_[static_cast<int>(Channel::Write)]->capacity =
      config_.write_capacity;
  if (obs::TraceSink* const sink = obs::traceSink()) {
    sink->setProcessName(obs::track::kLink, "pfs link");
    sink->setThreadName(obs::track::kLink, 0, "read");
    sink->setThreadName(obs::track::kLink, 1, "write");
    sink->setProcessName(obs::track::kStreams, "pfs streams");
  }
}

SharedLink::~SharedLink() = default;

SharedLink::ChannelState& SharedLink::chan(Channel channel) noexcept {
  return *channels_[static_cast<int>(channel)];
}

const SharedLink::ChannelState& SharedLink::chan(
    Channel channel) const noexcept {
  return *channels_[static_cast<int>(channel)];
}

StreamId SharedLink::createStream(std::string name, double weight) {
  IOBTS_CHECK(weight > 0.0, "stream weight must be positive");
  IOBTS_CHECK(!std::isnan(weight), "stream weight must not be NaN");
  auto stream = std::make_unique<Stream>();
  stream->name = std::move(name);
  stream->weight = weight;
  streams_.push_back(std::move(stream));
  const StreamId id = static_cast<StreamId>(streams_.size() - 1);
  if (obs::TraceSink* const sink = obs::traceSink()) {
    sink->setThreadName(obs::track::kStreams, id, streams_.back()->name);
  }
  return id;
}

void SharedLink::noteSolveInputChanged(Channel channel) {
  ++chan(channel).input_version;
}

void SharedLink::setStreamCap(StreamId stream,
                              std::optional<BytesPerSec> cap) {
  IOBTS_CHECK(stream < streams_.size(), "unknown stream");
  IOBTS_CHECK(!cap || *cap >= 0.0, "cap must be non-negative");
  IOBTS_CHECK(!cap || !std::isnan(*cap), "cap must not be NaN");
  streams_[stream]->cap = cap;
  for (std::size_t c = 0; c < kChannels; ++c) {
    if (streams_[stream]->active[c] > 0) {
      noteSolveInputChanged(static_cast<Channel>(c));
      markDirty(static_cast<Channel>(c));
    }
  }
}

std::optional<BytesPerSec> SharedLink::streamCap(StreamId stream) const {
  IOBTS_CHECK(stream < streams_.size(), "unknown stream");
  return streams_[stream]->cap;
}

void SharedLink::setStreamWeight(StreamId stream, double weight) {
  IOBTS_CHECK(stream < streams_.size(), "unknown stream");
  IOBTS_CHECK(weight > 0.0, "stream weight must be positive");
  IOBTS_CHECK(!std::isnan(weight), "stream weight must not be NaN");
  streams_[stream]->weight = weight;
  for (std::size_t c = 0; c < kChannels; ++c) {
    if (streams_[stream]->active[c] > 0) {
      noteSolveInputChanged(static_cast<Channel>(c));
      markDirty(static_cast<Channel>(c));
    }
  }
}

double SharedLink::streamWeight(StreamId stream) const {
  IOBTS_CHECK(stream < streams_.size(), "unknown stream");
  return streams_[stream]->weight;
}

const std::string& SharedLink::streamName(StreamId stream) const {
  IOBTS_CHECK(stream < streams_.size(), "unknown stream");
  return streams_[stream]->name;
}

void SharedLink::setRecordStream(StreamId stream, bool record) {
  IOBTS_CHECK(stream < streams_.size(), "unknown stream");
  streams_[stream]->record = record;
  auto& recorded = recorded_streams_;
  const auto it = std::find(recorded.begin(), recorded.end(), stream);
  if (record && it == recorded.end()) {
    recorded.push_back(stream);
  } else if (!record && it != recorded.end()) {
    recorded.erase(it);
  }
}

sim::Task<TransferResult> SharedLink::transfer(Channel channel,
                                               StreamId stream, Bytes bytes,
                                               std::uint64_t journey) {
  IOBTS_CHECK(stream < streams_.size(), "unknown stream");
  TransferResult result;
  result.start = sim_.now();
  result.end = sim_.now();
  result.bytes = bytes;
  if (bytes == 0) co_return result;

  ChannelState& cs = chan(channel);

  auto transfer_obj = std::make_unique<Transfer>(sim_);
  Transfer& t = *transfer_obj;
  t.stream = stream;
  t.total = bytes;
  t.remaining = static_cast<double>(bytes);
  t.start = sim_.now();
  t.last_settle = sim_.now();
  t.serial = next_transfer_serial_++;
  t.journey = journey;
  t.status_sink = &result.status;
  if (config_.noise_sigma > 0.0) {
    const double factor =
        std::min(1.0, noise_rng_.lognormalFactor(config_.noise_sigma));
    const BytesPerSec reference = config_.noise_reference_rate > 0.0
                                      ? config_.noise_reference_rate
                                      : cs.capacity;
    t.noise_cap = std::min(cs.capacity, reference * factor);
  }
  cs.active.push_back(std::move(transfer_obj));
  ++streams_[stream]->active[static_cast<int>(channel)];
  noteSolveInputChanged(channel);
  markDirty(channel);

  co_await t.done.wait();
  result.end = sim_.now();
  co_return result;
}

void SharedLink::markDirty(Channel channel) {
  ChannelState& cs = chan(channel);
  if (cs.dirty_scheduled) return;
  cs.dirty_scheduled = true;
  sim::Time at = 0.0;
  if (cs.ever_resolved && config_.recompute_quantum > 0.0) {
    at = std::max(0.0, cs.last_resolve + config_.recompute_quantum -
                           sim_.now());
  }
  sim_.post(at, [this, channel] {
    chan(channel).dirty_scheduled = false;
    resolve(channel);
  });
}

void SharedLink::resolve(Channel channel) {
  ChannelState& cs = chan(channel);
  const sim::Time now = sim_.now();
  cs.last_resolve = now;
  cs.ever_resolved = true;

  // 0. Lazy settle: with unchanged solve inputs and `now` strictly before
  // the next-interesting-time bound, no transfer can have crossed the drain
  // threshold and no rate can change, so settle, solve, and sweep
  // rescheduling are all provable no-ops. The skip must not settle even in
  // force_full_resolve mode -- settling at an extra instant re-rounds
  // `remaining` and would break exact equivalence between the modes --
  // so the reference mode instead *verifies* the no-op claim without
  // mutating anything: project every transfer forward and check none could
  // have drained before the bound.
  obs::TraceSink* const sink = obs::traceSink();
  const std::uint32_t trace_tid = static_cast<std::uint32_t>(channel);
  const bool quiescent =
      cs.input_version == cs.solved_version && now < cs.next_interesting;
  if (quiescent) {
    ++cs.resolves_skipped;
    if (sink != nullptr) {
      sink->instant("pfs", "resolve.skip", obs::track::kLink, trace_tid, now,
                    static_cast<double>(cs.active.size()));
    }
    if (config_.force_full_resolve) {
      for (const auto& t : cs.active) {
        const double projected =
            t->remaining - t->rate * (now - t->last_settle);
        // Tiny slack: the bound and this projection round differently, so a
        // resolve landing within ULPs of the bound may disagree by ULPs.
        IOBTS_CHECK(projected > kDrainEpsilonBytes * (1.0 - 1e-9),
                    "lazy-skip bound violated: a transfer would have drained "
                    "before the next-interesting-time bound");
      }
    }
    return;
  }
  ++cs.resolves_executed;
  const std::uint64_t wall_start = sink != nullptr ? sink->wallNowNs() : 0;

  // 1. Settle progress since each transfer's last settlement.
  for (auto& t : cs.active) {
    const sim::Time dt = now - t->last_settle;
    if (dt > 0.0 && t->rate > 0.0) {
      t->remaining = std::max(0.0, t->remaining - t->rate * dt);
    }
    t->last_settle = now;
  }

  // 2. Complete drained transfers: stable in-place compaction of the
  // survivors (O(n) even when thousands drain in the same sweep; the
  // previous erase-from-the-middle made batch drains quadratic). Completed
  // transfers are collected and fired in their original active order so the
  // (time, seq) resume order of waiting coroutines is unchanged.
  auto& active = cs.active;
  std::size_t write_pos = 0;
  for (std::size_t read_pos = 0; read_pos < active.size(); ++read_pos) {
    if (active[read_pos]->remaining <= kDrainEpsilonBytes) {
      cs.completed_scratch.push_back(std::move(active[read_pos]));
    } else {
      if (write_pos != read_pos) active[write_pos] = std::move(active[read_pos]);
      ++write_pos;
    }
  }
  if (!cs.completed_scratch.empty()) {
    active.resize(write_pos);
    const bool judge = fault_plan_ && fault_plan_->hasTransferFaults();
    for (const auto& t : cs.completed_scratch) {
      cs.bytes_moved += t->total;
      Stream& s = *streams_[t->stream];
      s.bytes_moved += t->total;
      --s.active[static_cast<int>(channel)];
      // Fault verdict at settle time: the transfer ran to its full
      // fair-share duration and consumed bandwidth either way, but a faulted
      // one reports an EIO-class error to its waiter. The verdict is written
      // through status_sink before fire() so the awaiting frame observes it
      // on resumption.
      bool faulted = false;
      if (judge &&
          fault_plan_->faultVerdict(channel, t->stream, t->serial, now)) {
        *t->status_sink = TransferStatus::Faulted;
        ++cs.faulted_transfers;
        faulted = true;
      }
      if (sink != nullptr) {
        // Transfers are genuine virtual-time spans: start at admission, end
        // at the completing sweep. One track per stream; bytes in value.
        sink->complete("pfs",
                       faulted ? "transfer.faulted"
                               : (channel == Channel::Read ? "transfer.read"
                                                           : "transfer.write"),
                       obs::track::kStreams, t->stream, t->start,
                       now - t->start, static_cast<double>(t->total));
        if (t->journey != 0) {
          sink->flowStep("journey", "io", obs::track::kStreams, t->stream,
                         t->start, t->journey);
        }
      }
      t->done.fire();
    }
    cs.completed_scratch.clear();
    ++cs.input_version;
  }

  // 3. Re-solve the two-level allocation -- but only if the solve inputs
  // (membership, caps, weights) changed since the last solve. A resolve
  // with unchanged inputs (e.g. a coalesced dirty notification arriving
  // right after a sweep already resolved at this instant) cannot change any
  // rate, so settle + sweep rescheduling is sufficient.
  if (cs.input_version != cs.solved_version || config_.force_full_resolve) {
    solveRates(cs, channel, now);
    cs.solved_version = cs.input_version;
    ++cs.full_solves;
    if (sink != nullptr) {
      sink->instant("pfs", "solve", obs::track::kLink, trace_tid, now,
                    static_cast<double>(cs.group_streams.size()));
    }
  }

  // 4. Schedule the next completion sweep and re-derive the
  // next-interesting-time bound. Invalidate any in-flight sweep first; we
  // repost below. The sweep targets full drain (remaining / rate) while the
  // bound targets the drain threshold ((remaining - epsilon) / rate), so
  // the bound never exceeds the sweep time and the sweep itself is never
  // lazily skipped.
  ++cs.sweep_generation;
  sim::Time next = std::numeric_limits<double>::infinity();
  sim::Time interesting = std::numeric_limits<double>::infinity();
  for (const auto& t : cs.active) {
    if (t->rate > 0.0) {
      next = std::min(next, t->remaining / t->rate);
      interesting =
          std::min(interesting, (t->remaining - kDrainEpsilonBytes) / t->rate);
    }
  }
  cs.next_interesting = std::isfinite(interesting)
                            ? now + std::max(0.0, interesting)
                            : std::numeric_limits<double>::infinity();
  if (std::isfinite(next)) {
    const std::uint64_t gen = cs.sweep_generation;
    sim_.post(next, [this, channel, gen] {
      if (chan(channel).sweep_generation == gen) resolve(channel);
    });
  } else if (!cs.active.empty() && cs.degrade_factor != 0.0) {
    // Zero aggregate rate during a blackout window is the intended stall,
    // not an anomaly: the end-of-window edge event re-solves and the
    // transfers resume.
    IOBTS_LOG_WARN() << "channel " << channelName(channel) << " has "
                     << cs.active.size()
                     << " active transfers but zero aggregate rate";
  }
  if (sink != nullptr) {
    sink->complete("pfs", "resolve", obs::track::kLink, trace_tid, now, 0.0,
                   static_cast<double>(cs.active.size()),
                   sink->wallNowNs() - wall_start);
  }
}

void SharedLink::solveRates(ChannelState& cs, Channel channel,
                            sim::Time now) {
  // Group active transfers by stream, first-appearance order, using the
  // epoch-stamped slot map (no per-resolve O(total streams) clear) and flat
  // reused buffers (no per-resolve vector-of-vectors).
  //    Level 1: streams (weight = stream weight, cap = stream cap combined
  //    with the sum of its transfers' noise caps).
  //    Level 2: a stream's transfers split its allocation equally, subject
  //    to per-transfer noise caps.
  const std::uint32_t epoch = ++cs.grouping_epoch;
  if (cs.slot_epoch.size() < streams_.size()) {
    cs.slot_epoch.resize(streams_.size(), 0);
    cs.slot.resize(streams_.size(), 0);
  }
  cs.group_streams.clear();
  cs.group_count.clear();
  for (const auto& t : cs.active) {
    if (cs.slot_epoch[t->stream] != epoch) {
      cs.slot_epoch[t->stream] = epoch;
      cs.slot[t->stream] = static_cast<std::uint32_t>(cs.group_streams.size());
      cs.group_streams.push_back(t->stream);
      cs.group_count.push_back(0);
    }
    ++cs.group_count[cs.slot[t->stream]];
  }
  const std::size_t n_groups = cs.group_streams.size();
  cs.group_offset.resize(n_groups + 1);
  cs.group_offset[0] = 0;
  for (std::size_t k = 0; k < n_groups; ++k) {
    cs.group_offset[k + 1] = cs.group_offset[k] + cs.group_count[k];
  }
  cs.grouped.resize(cs.active.size());
  {
    // group_count doubles as the per-group fill cursor during placement.
    std::fill(cs.group_count.begin(), cs.group_count.end(), 0u);
    for (const auto& t : cs.active) {
      const std::uint32_t g = cs.slot[t->stream];
      cs.grouped[cs.group_offset[g] + cs.group_count[g]++] = t.get();
    }
  }

  // Degradation/blackout windows scale the deliverable capacity. Guarded so
  // a healthy link's arithmetic stays bit-identical to the pre-fault-plane
  // solve (the golden-digest gate depends on it).
  double effective_capacity = cs.capacity;
  if (cs.degrade_factor != 1.0) effective_capacity *= cs.degrade_factor;
  // Congestion: aggregate efficiency drops with concurrent writers.
  if (config_.congestion_gamma > 0.0 && cs.active.size() > 1) {
    effective_capacity /=
        1.0 + config_.congestion_gamma *
                  static_cast<double>(cs.active.size() - 1);
  }

  double total_rate = 0.0;
  double total_demand = 0.0;
  if (n_groups > 0) {
    cs.level1.resize(n_groups);
    for (std::size_t k = 0; k < n_groups; ++k) {
      const Stream& s = *streams_[cs.group_streams[k]];
      cs.level1[k].weight = s.weight;
      std::optional<BytesPerSec> cap = s.cap;
      if (config_.client_rate_cap > 0.0) {
        const BytesPerSec client_cap = config_.client_rate_cap * s.weight;
        cap = cap ? std::min(*cap, client_cap) : client_cap;
      }
      // Straggler windows cap the afflicted stream at a fraction of the base
      // channel capacity. The vector is empty on a fault-free link, so this
      // costs nothing (and performs no float ops) in the common case.
      if (!straggler_factor_.empty()) {
        const StreamId sid = cs.group_streams[k];
        if (sid < straggler_factor_.size() && straggler_factor_[sid] != 1.0) {
          const BytesPerSec straggler_cap =
              cs.capacity * straggler_factor_[sid];
          cap = cap ? std::min(*cap, straggler_cap) : straggler_cap;
        }
      }
      if (config_.noise_sigma > 0.0) {
        double noise_sum = 0.0;
        for (std::uint32_t j = cs.group_offset[k]; j < cs.group_offset[k + 1];
             ++j) {
          noise_sum += cs.grouped[j]->noise_cap.value_or(cs.capacity);
        }
        cap = cap ? std::min(*cap, noise_sum) : noise_sum;
      }
      cs.level1[k].cap = cap;
      total_demand += cap ? std::min(*cap, cs.capacity) : cs.capacity;
    }
    fairShareInto(cs.level1, effective_capacity, cs.fair_share_scratch,
                  cs.level1_alloc);

    for (std::size_t k = 0; k < n_groups; ++k) {
      const std::uint32_t begin = cs.group_offset[k];
      const std::uint32_t count = cs.group_offset[k + 1] - begin;
      cs.level2.resize(count);
      for (std::uint32_t j = 0; j < count; ++j) {
        cs.level2[j].weight = 1.0;
        cs.level2[j].cap = cs.grouped[begin + j]->noise_cap;
      }
      const FairShareStats rates =
          fairShareInto(cs.level2, cs.level1_alloc[k], cs.fair_share_scratch,
                        cs.level2_alloc);
      for (std::uint32_t j = 0; j < count; ++j) {
        cs.grouped[begin + j]->rate = cs.level2_alloc[j];
      }
      total_rate += rates.total;
      Stream& s = *streams_[cs.group_streams[k]];
      if (s.record) {
        s.rate_series[static_cast<int>(channel)].add(now, rates.total);
      }
    }
  }
  // Opted-in streams with no active transfers drop to zero in the record.
  for (const StreamId sid : recorded_streams_) {
    Stream& s = *streams_[sid];
    if (s.active[static_cast<int>(channel)] == 0) {
      auto& series = s.rate_series[static_cast<int>(channel)];
      if (!series.empty() && series.points().back().second != 0.0) {
        series.add(now, 0.0);
      }
    }
  }

  // Contention is judged against what the link can actually deliver: a
  // degradation window can push an otherwise-uncontended load over the edge
  // (graceful degradation: the cluster limiter re-estimates against this).
  BytesPerSec contention_capacity = cs.capacity;
  if (cs.degrade_factor != 1.0) contention_capacity *= cs.degrade_factor;
  cs.contended =
      n_groups >= 2 && total_demand > contention_capacity * 1.000001;
  if (config_.record_total) {
    cs.total_series.add(now, total_rate);
    // Backlog twin of the rate series: how many transfers were live at each
    // solve point. Feeds the run-summary timeline (utilization vs. backlog).
    if (cs.active_series.empty() ||
        cs.active_series.points().back().second !=
            static_cast<double>(cs.active.size())) {
      cs.active_series.add(now, static_cast<double>(cs.active.size()));
    }
  }
}

// --- Fault plane -----------------------------------------------------------

void SharedLink::refreshChannelFactor(Channel channel, sim::Time now) {
  ChannelState& cs = chan(channel);
  double factor = 1.0;
  for (const fault::DegradationEvent& ev :
       degradations_[static_cast<int>(channel)]) {
    if (ev.window.contains(now)) factor *= ev.factor;
  }
  if (factor != cs.degrade_factor) {
    cs.degrade_factor = factor;
    ++cs.capacity_edges;
    if (obs::TraceSink* const sink = obs::traceSink()) {
      sink->instant("pfs", "fault.capacity_edge", obs::track::kLink,
                    static_cast<std::uint32_t>(channel), now, factor);
    }
    noteSolveInputChanged(channel);
    markDirty(channel);
  }
}

void SharedLink::refreshStragglerFactor(StreamId stream, sim::Time now) {
  if (straggler_factor_.size() < streams_.size()) {
    straggler_factor_.resize(streams_.size(), 1.0);
  }
  double factor = 1.0;
  for (const fault::StragglerEvent& ev : stragglers_) {
    if (ev.stream == stream && ev.window.contains(now)) {
      factor *= ev.multiplier;
    }
  }
  if (factor != straggler_factor_[stream]) {
    straggler_factor_[stream] = factor;
    for (std::size_t c = 0; c < kChannels; ++c) {
      if (streams_[stream]->active[c] > 0) {
        noteSolveInputChanged(static_cast<Channel>(c));
        markDirty(static_cast<Channel>(c));
      }
    }
  }
}

void SharedLink::scheduleDegradationEdges(Channel channel,
                                          fault::TimeWindow window) {
  const sim::Time now = sim_.now();
  sim_.post(std::max(0.0, window.begin - now), [this, channel] {
    refreshChannelFactor(channel, sim_.now());
  });
  if (std::isfinite(window.end)) {
    sim_.post(std::max(0.0, window.end - now), [this, channel] {
      refreshChannelFactor(channel, sim_.now());
    });
  }
}

void SharedLink::scheduleStragglerEdges(StreamId stream,
                                        fault::TimeWindow window) {
  const sim::Time now = sim_.now();
  sim_.post(std::max(0.0, window.begin - now), [this, stream] {
    refreshStragglerFactor(stream, sim_.now());
  });
  if (std::isfinite(window.end)) {
    sim_.post(std::max(0.0, window.end - now), [this, stream] {
      refreshStragglerFactor(stream, sim_.now());
    });
  }
}

void SharedLink::applyDegradation(Channel channel, double factor,
                                  fault::TimeWindow window) {
  IOBTS_CHECK(factor > 0.0 && factor <= 1.0 && !std::isnan(factor),
              "degradation factor must lie in (0, 1]; use applyBlackout for "
              "a full outage");
  IOBTS_CHECK(window.end > window.begin, "degradation window must be non-empty");
  IOBTS_CHECK(window.begin >= sim_.now(),
              "degradation window must not start in the past");
  degradations_[static_cast<int>(channel)].push_back(
      fault::DegradationEvent{channel, factor, window});
  scheduleDegradationEdges(channel, window);
}

void SharedLink::applyStraggler(StreamId stream, double multiplier,
                                fault::TimeWindow window) {
  IOBTS_CHECK(stream < streams_.size(), "unknown stream");
  IOBTS_CHECK(multiplier > 0.0 && multiplier <= 1.0 && !std::isnan(multiplier),
              "straggler multiplier must lie in (0, 1]");
  IOBTS_CHECK(window.end > window.begin, "straggler window must be non-empty");
  IOBTS_CHECK(window.begin >= sim_.now(),
              "straggler window must not start in the past");
  stragglers_.push_back(fault::StragglerEvent{stream, multiplier, window});
  if (straggler_factor_.size() < streams_.size()) {
    straggler_factor_.resize(streams_.size(), 1.0);
  }
  scheduleStragglerEdges(stream, window);
}

void SharedLink::applyBlackout(fault::TimeWindow window) {
  IOBTS_CHECK(window.end > window.begin, "blackout window must be non-empty");
  IOBTS_CHECK(window.begin >= sim_.now(),
              "blackout window must not start in the past");
  // A blackout is a factor-0 degradation on both channels; the compound
  // product then collapses to 0 for the window's duration.
  for (std::size_t c = 0; c < kChannels; ++c) {
    const Channel channel = static_cast<Channel>(c);
    degradations_[c].push_back(fault::DegradationEvent{channel, 0.0, window});
    scheduleDegradationEdges(channel, window);
  }
}

void SharedLink::applyOutage(double fraction, fault::TimeWindow window) {
  IOBTS_CHECK(fraction > 0.0 && fraction <= 1.0 && !std::isnan(fraction),
              "outage fraction must lie in (0, 1]");
  IOBTS_CHECK(window.end > window.begin, "outage window must be non-empty");
  IOBTS_CHECK(window.begin >= sim_.now(),
              "outage window must not start in the past");
  // The surviving fraction is a plain degradation factor applied to both
  // channels with identical edges, so the loss is correlated by
  // construction (fraction 1 collapses to the blackout factor 0).
  const double factor = 1.0 - fraction;
  for (std::size_t c = 0; c < kChannels; ++c) {
    const Channel channel = static_cast<Channel>(c);
    degradations_[c].push_back(
        fault::DegradationEvent{channel, factor, window});
    scheduleDegradationEdges(channel, window);
  }
}

void SharedLink::installFaultPlan(const fault::FaultPlan& plan) {
  IOBTS_CHECK(fault_plan_ == nullptr, "a fault plan is already installed");
  fault_plan_ = &plan;
  if (obs::TraceSink* const sink = obs::traceSink()) plan.annotate(*sink);
  for (const fault::DegradationEvent& ev : plan.degradations()) {
    applyDegradation(ev.channel, ev.factor, ev.window);
  }
  for (const fault::StragglerEvent& ev : plan.stragglers()) {
    applyStraggler(ev.stream, ev.multiplier, ev.window);
  }
  for (const fault::BlackoutEvent& ev : plan.blackouts()) {
    applyBlackout(ev.window);
  }
  for (const fault::OutageEvent& ev : plan.outages()) {
    applyOutage(ev.fraction, ev.window);
  }
}

BytesPerSec SharedLink::effectiveCapacity(Channel channel) const noexcept {
  const ChannelState& cs = chan(channel);
  return cs.degrade_factor != 1.0 ? cs.capacity * cs.degrade_factor
                                  : cs.capacity;
}

BytesPerSec SharedLink::capacity(Channel channel) const noexcept {
  return chan(channel).capacity;
}

std::size_t SharedLink::activeTransfers(Channel channel) const noexcept {
  return chan(channel).active.size();
}

Bytes SharedLink::bytesMoved(Channel channel) const noexcept {
  return chan(channel).bytes_moved;
}

Bytes SharedLink::streamBytes(StreamId stream) const {
  IOBTS_CHECK(stream < streams_.size(), "unknown stream");
  return streams_[stream]->bytes_moved;
}

std::size_t SharedLink::streamCount() const noexcept {
  return streams_.size();
}

const StepSeries& SharedLink::totalRateSeries(Channel channel) const {
  return chan(channel).total_series;
}

const StepSeries& SharedLink::activeTransferSeries(Channel channel) const {
  return chan(channel).active_series;
}

const StepSeries& SharedLink::streamRateSeries(StreamId stream,
                                               Channel channel) const {
  IOBTS_CHECK(stream < streams_.size(), "unknown stream");
  return streams_[stream]->rate_series[static_cast<int>(channel)];
}

bool SharedLink::contended(Channel channel) const noexcept {
  return chan(channel).contended;
}

void SharedLink::poke(Channel channel) { markDirty(channel); }

SharedLink::ResolveStats SharedLink::resolveStats(
    Channel channel) const noexcept {
  const ChannelState& cs = chan(channel);
  return ResolveStats{.executed = cs.resolves_executed,
                      .lazy_skipped = cs.resolves_skipped,
                      .full_solves = cs.full_solves,
                      .faulted_transfers = cs.faulted_transfers,
                      .capacity_edges = cs.capacity_edges};
}

sim::Time SharedLink::nextInterestingTime(Channel channel) const noexcept {
  return chan(channel).next_interesting;
}

void SharedLink::exportMetrics(obs::MetricsRegistry& registry) const {
  for (std::size_t c = 0; c < kChannels; ++c) {
    const Channel channel = static_cast<Channel>(c);
    const ChannelState& cs = chan(channel);
    const std::string prefix = std::string("pfs.") + channelName(channel);
    registry.addCounter(prefix + ".resolves_executed", cs.resolves_executed);
    registry.addCounter(prefix + ".resolves_skipped", cs.resolves_skipped);
    registry.addCounter(prefix + ".full_solves", cs.full_solves);
    registry.addCounter(prefix + ".faulted_transfers", cs.faulted_transfers);
    registry.addCounter(prefix + ".capacity_edges", cs.capacity_edges);
    registry.addCounter(prefix + ".bytes_moved", cs.bytes_moved);
    registry.setGauge(prefix + ".active_transfers",
                      static_cast<double>(cs.active.size()));
    registry.setGauge(prefix + ".effective_capacity",
                      effectiveCapacity(channel));
    registry.setGauge(prefix + ".contended", cs.contended ? 1.0 : 0.0);
  }
  registry.setGauge("pfs.streams", static_cast<double>(streams_.size()));
  if (sim_.isSharded()) {
    registry.setGauge("pfs.link.shard", static_cast<double>(sim_.shardId()));
  }
}

}  // namespace iobts::pfs
