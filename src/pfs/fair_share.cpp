#include "pfs/fair_share.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.hpp"

namespace iobts::pfs {

FairShareStats fairShareInto(std::span<const FairShareItem> items,
                             BytesPerSec capacity, FairShareScratch& scratch,
                             std::vector<BytesPerSec>& allocation) {
  IOBTS_CHECK(capacity >= 0.0, "capacity must be non-negative");
  FairShareStats stats;
  allocation.assign(items.size(), 0.0);
  if (items.empty() || capacity == 0.0) return stats;

  // Validate and precompute each item's cap/weight ratio once (the
  // comparator below would otherwise recompute two divisions per comparison,
  // and a NaN ratio would break strict weak ordering). The same pass
  // classifies the instance for the bucket pre-pass: how many items are
  // capped, and whether all capped items share a single cap/weight ratio
  // class (in which case their input order already is their sorted order).
  scratch.ratio.resize(items.size());
  double active_weight = 0.0;
  std::size_t n_capped = 0;
  double first_ratio = 0.0;
  bool single_ratio_class = true;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& item = items[i];
    IOBTS_CHECK(!std::isnan(item.weight), "weights must not be NaN");
    IOBTS_CHECK(item.weight >= 0.0, "weights must be non-negative");
    IOBTS_CHECK(!std::isinf(item.weight), "weights must be finite");
    if (item.cap) {
      IOBTS_CHECK(!std::isnan(*item.cap), "caps must not be NaN");
      IOBTS_CHECK(*item.cap >= 0.0, "caps must be non-negative");
    }
    active_weight += item.weight;
    if (!item.cap) {
      scratch.ratio[i] = std::numeric_limits<double>::infinity();
    } else if (item.weight <= 0.0) {
      scratch.ratio[i] = 0.0;  // zero weight: saturates at once
    } else {
      scratch.ratio[i] = *item.cap / item.weight;
    }
    if (item.cap) {
      if (n_capped == 0) {
        first_ratio = scratch.ratio[i];
      } else if (scratch.ratio[i] != first_ratio) {
        single_ratio_class = false;
      }
      ++n_capped;
    }
  }

  // Bucket pre-pass. Progressive filling saturates items in ascending
  // cap/weight order and its fill level only ever rises, so when no
  // positive-weight item saturates at the *initial* level
  // capacity / total_weight, the sorted walk would break at its very first
  // positive-weight item and the sort is pure overhead. That covers the
  // common all-uncapped and under-demand (contention-free) solves. The
  // fast path reuses the identical division, so allocations stay
  // bit-identical to the sorted walk's.
  const double lambda0 = active_weight > 0.0 ? capacity / active_weight : 0.0;
  bool any_saturating = false;
  if (n_capped > 0) {
    for (const auto& item : items) {
      if (item.weight > 0.0 && item.cap &&
          *item.cap <= lambda0 * item.weight) {
        any_saturating = true;
        break;
      }
    }
  }

  double lambda = 0.0;
  if (!any_saturating) {
    lambda = lambda0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      const auto& item = items[i];
      if (item.weight <= 0.0) continue;  // allocation stays 0
      double alloc = lambda * item.weight;
      if (item.cap) alloc = std::min(alloc, *item.cap);
      allocation[i] = alloc;
    }
  } else {
    // Order item indices for the saturating walk: capped items ascending by
    // cap/weight ratio, then uncapped items in input order. Only the capped
    // bucket is ever sorted -- uncapped items can never join the saturating
    // prefix, and once the walk breaks, the remaining items' allocations are
    // order-independent (each is min(lambda * weight, cap)). When all capped
    // items share one ratio class their input order is already sorted and
    // even that sort is skipped.
    scratch.order.resize(items.size());
    {
      std::size_t capped_pos = 0;
      std::size_t uncapped_pos = n_capped;
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (items[i].cap) {
          scratch.order[capped_pos++] = static_cast<std::uint32_t>(i);
        } else {
          scratch.order[uncapped_pos++] = static_cast<std::uint32_t>(i);
        }
      }
    }
    if (!single_ratio_class) {
      // std::sort with an index tie-breaker, not std::stable_sort: the
      // entries are distinct indices, so breaking ratio ties by index yields
      // exactly the stable order while staying in-place (stable_sort
      // allocates a temporary merge buffer on every call, which would break
      // the zero-allocation steady state of the resolve path).
      std::sort(scratch.order.begin(), scratch.order.begin() + n_capped,
                [&ratio = scratch.ratio](std::uint32_t a, std::uint32_t b) {
                  return ratio[a] != ratio[b] ? ratio[a] < ratio[b] : a < b;
                });
    }

    double remaining = capacity;

    // Progressive filling: walk items in ratio order; an item saturates at
    // its cap when cap <= lambda * weight for the prospective lambda.
    std::size_t k = 0;
    for (; k < scratch.order.size(); ++k) {
      const std::size_t i = scratch.order[k];
      const auto& item = items[i];
      if (item.weight <= 0.0) {
        allocation[i] = 0.0;
        continue;
      }
      const double prospective_lambda =
          active_weight > 0.0 ? remaining / active_weight : 0.0;
      if (item.cap && *item.cap <= prospective_lambda * item.weight) {
        // Saturates below the fill level: pin at cap.
        allocation[i] = *item.cap;
        remaining -= *item.cap;
        active_weight -= item.weight;
        if (remaining < 0.0) remaining = 0.0;
      } else {
        // This and all later items (larger ratios) are lambda-bound.
        lambda = prospective_lambda;
        break;
      }
    }
    for (; k < scratch.order.size(); ++k) {
      const std::size_t i = scratch.order[k];
      const auto& item = items[i];
      if (item.weight <= 0.0) {
        allocation[i] = 0.0;
        continue;
      }
      double alloc = lambda * item.weight;
      if (item.cap) alloc = std::min(alloc, *item.cap);
      allocation[i] = alloc;
    }
  }

  stats.fill_level = lambda;
  stats.total = std::accumulate(allocation.begin(), allocation.end(), 0.0);
  // Guard against floating-point overshoot.
  if (stats.total > capacity && stats.total > 0.0) {
    const double scale = capacity / stats.total;
    for (auto& a : allocation) a *= scale;
    stats.total = capacity;
  }
  return stats;
}

FairShareResult fairShare(const std::vector<FairShareItem>& items,
                          BytesPerSec capacity) {
  FairShareResult result;
  FairShareScratch scratch;
  const FairShareStats stats =
      fairShareInto(items, capacity, scratch, result.allocation);
  result.total = stats.total;
  result.fill_level = stats.fill_level;
  return result;
}

}  // namespace iobts::pfs
