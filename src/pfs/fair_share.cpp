#include "pfs/fair_share.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.hpp"

namespace iobts::pfs {

FairShareResult fairShare(const std::vector<FairShareItem>& items,
                          BytesPerSec capacity) {
  IOBTS_CHECK(capacity >= 0.0, "capacity must be non-negative");
  FairShareResult result;
  result.allocation.assign(items.size(), 0.0);
  if (items.empty() || capacity == 0.0) return result;

  // Order item indices by cap/weight ratio ascending; uncapped items last.
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  auto ratio = [&](std::size_t i) {
    const auto& item = items[i];
    if (!item.cap) return std::numeric_limits<double>::infinity();
    if (item.weight <= 0.0) return 0.0;  // zero weight: saturates at once
    return *item.cap / item.weight;
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return ratio(a) < ratio(b);
                   });

  double remaining = capacity;
  double active_weight = 0.0;
  for (const auto& item : items) {
    IOBTS_CHECK(item.weight >= 0.0, "weights must be non-negative");
    IOBTS_CHECK(!item.cap || *item.cap >= 0.0, "caps must be non-negative");
    active_weight += item.weight;
  }

  // Progressive filling: walk items in ratio order; an item saturates at its
  // cap when cap <= lambda * weight for the prospective lambda.
  double lambda = 0.0;
  std::size_t k = 0;
  for (; k < order.size(); ++k) {
    const std::size_t i = order[k];
    const auto& item = items[i];
    if (item.weight <= 0.0) {
      result.allocation[i] = 0.0;
      continue;
    }
    const double prospective_lambda =
        active_weight > 0.0 ? remaining / active_weight : 0.0;
    if (item.cap && *item.cap <= prospective_lambda * item.weight) {
      // Saturates below the fill level: pin at cap.
      result.allocation[i] = *item.cap;
      remaining -= *item.cap;
      active_weight -= item.weight;
      if (remaining < 0.0) remaining = 0.0;
    } else {
      // This and all later items (larger ratios) are lambda-bound.
      lambda = prospective_lambda;
      break;
    }
  }
  for (; k < order.size(); ++k) {
    const std::size_t i = order[k];
    const auto& item = items[i];
    if (item.weight <= 0.0) {
      result.allocation[i] = 0.0;
      continue;
    }
    double alloc = lambda * item.weight;
    if (item.cap) alloc = std::min(alloc, *item.cap);
    result.allocation[i] = alloc;
  }

  result.fill_level = lambda;
  result.total = std::accumulate(result.allocation.begin(),
                                 result.allocation.end(), 0.0);
  // Guard against floating-point overshoot.
  if (result.total > capacity && result.total > 0.0) {
    const double scale = capacity / result.total;
    for (auto& a : result.allocation) a *= scale;
    result.total = capacity;
  }
  return result;
}

}  // namespace iobts::pfs
