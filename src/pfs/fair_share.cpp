#include "pfs/fair_share.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.hpp"

namespace iobts::pfs {

FairShareStats fairShareInto(std::span<const FairShareItem> items,
                             BytesPerSec capacity, FairShareScratch& scratch,
                             std::vector<BytesPerSec>& allocation) {
  IOBTS_CHECK(capacity >= 0.0, "capacity must be non-negative");
  FairShareStats stats;
  allocation.assign(items.size(), 0.0);
  if (items.empty() || capacity == 0.0) return stats;

  // Validate and precompute each item's cap/weight ratio once (the
  // comparator below would otherwise recompute two divisions per comparison,
  // and a NaN ratio would break strict weak ordering).
  scratch.ratio.resize(items.size());
  double active_weight = 0.0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& item = items[i];
    IOBTS_CHECK(!std::isnan(item.weight), "weights must not be NaN");
    IOBTS_CHECK(item.weight >= 0.0, "weights must be non-negative");
    if (item.cap) {
      IOBTS_CHECK(!std::isnan(*item.cap), "caps must not be NaN");
      IOBTS_CHECK(*item.cap >= 0.0, "caps must be non-negative");
    }
    active_weight += item.weight;
    if (!item.cap) {
      scratch.ratio[i] = std::numeric_limits<double>::infinity();
    } else if (item.weight <= 0.0) {
      scratch.ratio[i] = 0.0;  // zero weight: saturates at once
    } else {
      scratch.ratio[i] = *item.cap / item.weight;
    }
  }

  // Order item indices by cap/weight ratio ascending; uncapped items last.
  scratch.order.resize(items.size());
  std::iota(scratch.order.begin(), scratch.order.end(), 0u);
  std::stable_sort(scratch.order.begin(), scratch.order.end(),
                   [&ratio = scratch.ratio](std::uint32_t a, std::uint32_t b) {
                     return ratio[a] < ratio[b];
                   });

  double remaining = capacity;

  // Progressive filling: walk items in ratio order; an item saturates at its
  // cap when cap <= lambda * weight for the prospective lambda.
  double lambda = 0.0;
  std::size_t k = 0;
  for (; k < scratch.order.size(); ++k) {
    const std::size_t i = scratch.order[k];
    const auto& item = items[i];
    if (item.weight <= 0.0) {
      allocation[i] = 0.0;
      continue;
    }
    const double prospective_lambda =
        active_weight > 0.0 ? remaining / active_weight : 0.0;
    if (item.cap && *item.cap <= prospective_lambda * item.weight) {
      // Saturates below the fill level: pin at cap.
      allocation[i] = *item.cap;
      remaining -= *item.cap;
      active_weight -= item.weight;
      if (remaining < 0.0) remaining = 0.0;
    } else {
      // This and all later items (larger ratios) are lambda-bound.
      lambda = prospective_lambda;
      break;
    }
  }
  for (; k < scratch.order.size(); ++k) {
    const std::size_t i = scratch.order[k];
    const auto& item = items[i];
    if (item.weight <= 0.0) {
      allocation[i] = 0.0;
      continue;
    }
    double alloc = lambda * item.weight;
    if (item.cap) alloc = std::min(alloc, *item.cap);
    allocation[i] = alloc;
  }

  stats.fill_level = lambda;
  stats.total = std::accumulate(allocation.begin(), allocation.end(), 0.0);
  // Guard against floating-point overshoot.
  if (stats.total > capacity && stats.total > 0.0) {
    const double scale = capacity / stats.total;
    for (auto& a : allocation) a *= scale;
    stats.total = capacity;
  }
  return stats;
}

FairShareResult fairShare(const std::vector<FairShareItem>& items,
                          BytesPerSec capacity) {
  FairShareResult result;
  FairShareScratch scratch;
  const FairShareStats stats =
      fairShareInto(items, capacity, scratch, result.allocation);
  result.total = stats.total;
  result.fill_level = stats.fill_level;
  return result;
}

}  // namespace iobts::pfs
