// Shared parallel-file-system bandwidth model.
//
// The SharedLink stands in for the cluster's PFS (the paper's IBM Spectrum
// Scale at 106 GB/s write / 120 GB/s read). Concurrent transfers share each
// channel's capacity by weighted max-min fairness (see fair_share.hpp), with
// three cap sources:
//
//   * stream caps    -- e.g. a QoS/limiter cap on a job's or rank's traffic;
//   * transfer noise -- optional lognormal per-transfer slowdown modelling
//                       stragglers/congestion (Fig. 14's "I/O variability");
//   * channel capacity itself.
//
// Streams group transfers for accounting and capping: the cluster simulator
// uses one stream per job; the MPI runtime uses one stream per rank. Stream
// weight models the "fair distribution according to the number of nodes"
// from the paper's Fig. 1.
//
// Rate bookkeeping is event-driven: on every join/leave/cap change the link
// settles elapsed progress, re-solves the allocation, and reschedules the
// next completion sweep. An optional recompute quantum batches rate updates
// for very large rank counts (documented accuracy/performance knob).
//
// Each channel additionally tracks a "next interesting time": the earliest
// virtual time at which any active transfer could cross the drain threshold
// under the current rates. A resolve that arrives strictly before that bound
// with unchanged solve inputs is a provable no-op (no transfer can complete,
// no rate can change) and returns in O(1) without settling. The
// force_full_resolve reference mode takes the identical skip but verifies
// the no-op claim with a non-mutating projection check, so both modes keep
// bit-identical state and event sequences (see resolve-equivalence tests).
//
// Fault plane (src/fault): the link accepts capacity-degradation windows,
// per-stream straggler caps, and full blackouts -- either directly
// (applyDegradation/applyStraggler/applyBlackout) or wholesale from a
// fault::FaultPlan, which additionally supplies per-transfer EIO-like fault
// verdicts evaluated at settle time. Window edges are posted as
// resolve-triggering events, so a degradation edge is an "interesting time"
// for the lazy-settle machinery like any other solve-input change. A null
// plan schedules nothing and the solve arithmetic is bit-identical to a
// fault-free link.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "pfs/channel.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace iobts::obs {
class MetricsRegistry;
}  // namespace iobts::obs

namespace iobts::pfs {

struct LinkConfig {
  BytesPerSec read_capacity = 120.0e9;   // Lichtenberg: 120 GB/s reads
  BytesPerSec write_capacity = 106.0e9;  // Lichtenberg: 106 GB/s writes
  /// Lognormal sigma for per-transfer slowdown; 0 disables noise.
  double noise_sigma = 0.0;
  /// Rate the noise factor scales (a transfer's private cap is
  /// factor * noise_reference_rate). 0 = the channel capacity; set it near
  /// the expected per-client rate to model per-client stragglers ("slow
  /// I/O", Fig. 14) rather than whole-link slowdowns.
  BytesPerSec noise_reference_rate = 0.0;
  /// Per-client injection limit: a stream of weight w never receives more
  /// than w * client_rate_cap (a single node cannot drive the whole PFS).
  /// 0 disables.
  BytesPerSec client_rate_cap = 0.0;
  /// Congestion model: with k concurrently active transfers the channel
  /// delivers capacity / (1 + gamma * (k - 1)). Models the aggregate
  /// efficiency loss of a PFS under many concurrent writers (metadata and
  /// lock traffic, client-side interference). 0 disables. Note the
  /// asymmetry this creates for the paper's mechanism: paced transfers
  /// sleep between sub-requests, so they lower the *instantaneous*
  /// concurrency even when the same ranks are writing.
  double congestion_gamma = 0.0;
  /// Minimum virtual-time spacing between allocation re-solves triggered by
  /// joins/caps (completions always re-solve exactly). 0 = exact mode.
  sim::Time recompute_quantum = 0.0;
  std::uint64_t seed = 1;
  /// Record the total allocated rate per channel as a StepSeries (Fig. 2).
  bool record_total = true;
  /// Debug/test knob: disable the incremental-resolve short-circuit so every
  /// resolve re-runs the full two-level solve even when no stream's
  /// membership, cap, or weight changed since the last solve. The
  /// equivalence test suite runs both settings against identical op
  /// sequences and asserts identical allocations and event ordering.
  bool force_full_resolve = false;
};

/// Outcome of a transfer. Faulted transfers run to their full (fair-share)
/// duration and consume bandwidth, but the payload is lost -- the EIO-class
/// error a client sees when an OST fails the request at completion.
enum class TransferStatus : int { Ok = 0, Faulted = 1 };

struct TransferResult {
  sim::Time start = 0.0;
  sim::Time end = 0.0;
  Bytes bytes = 0;
  TransferStatus status = TransferStatus::Ok;

  bool ok() const noexcept { return status == TransferStatus::Ok; }
  Seconds duration() const noexcept { return end - start; }
  BytesPerSec averageRate() const noexcept {
    const Seconds d = duration();
    return d > 0.0 ? static_cast<double>(bytes) / d
                   : std::numeric_limits<double>::infinity();
  }
};

class SharedLink {
 public:
  SharedLink(sim::Simulation& simulation, LinkConfig config);
  SharedLink(const SharedLink&) = delete;
  SharedLink& operator=(const SharedLink&) = delete;
  ~SharedLink();

  /// Register a traffic stream (a rank or a job). Weight scales the fair
  /// share relative to other streams.
  StreamId createStream(std::string name, double weight = 1.0);

  /// Set or clear the stream's aggregate rate cap (applies to each channel
  /// independently). Takes effect at the current virtual time.
  void setStreamCap(StreamId stream, std::optional<BytesPerSec> cap);
  std::optional<BytesPerSec> streamCap(StreamId stream) const;

  void setStreamWeight(StreamId stream, double weight);
  double streamWeight(StreamId stream) const;
  const std::string& streamName(StreamId stream) const;

  /// Opt in to recording this stream's allocated rate over time (Fig. 2's
  /// per-job series). Off by default to keep 10k-rank runs lean.
  void setRecordStream(StreamId stream, bool record);

  /// Move `bytes` through `channel` on behalf of `stream`; completes when the
  /// bytes have drained at the evolving fair-share rate. Check the result's
  /// status: with a fault plan installed, a transfer may complete Faulted.
  /// A nonzero `journey` id ties the settled transfer span into the
  /// caller's flow chain (obs::TraceSink flow events); 0 records nothing.
  sim::Task<TransferResult> transfer(Channel channel, StreamId stream,
                                     Bytes bytes, std::uint64_t journey = 0);

  // --- Fault plane ---------------------------------------------------------

  /// Scale the channel's effective capacity by `factor` (in (0, 1]) during
  /// `window`. Both edges are posted as resolve-triggering events, so rates
  /// re-solve exactly at the window boundaries. Overlapping degradations
  /// compound multiplicatively. Windows must start no earlier than now.
  void applyDegradation(Channel channel, double factor,
                        fault::TimeWindow window);

  /// Cap `stream` at `multiplier` (in (0, 1]) x the base channel capacity on
  /// both channels during `window` -- a slow client ("straggler").
  void applyStraggler(StreamId stream, double multiplier,
                      fault::TimeWindow window);

  /// Zero both channels' bandwidth during `window`. Active transfers stall
  /// and resume at the window's end; they are not failed.
  void applyBlackout(fault::TimeWindow window);

  /// Correlated whole-outage: remove `fraction` (in (0, 1]) of BOTH
  /// channels' capacity simultaneously during `window` -- a failed server
  /// takes the same slice of read and write bandwidth with it. fraction == 1
  /// degenerates to applyBlackout (transfers stall, they are not failed).
  void applyOutage(double fraction, fault::TimeWindow window);

  /// Install a fault plan: schedules its degradation/straggler/blackout
  /// windows and enables its per-transfer fault verdicts at settle time.
  /// Call at most once, before the simulation runs past any window's start;
  /// the plan must outlive the link. An empty plan is a provable no-op.
  void installFaultPlan(const fault::FaultPlan& plan);

  /// The channel's capacity after degradation/blackout windows active at the
  /// current virtual time (== capacity() on an undegraded link).
  BytesPerSec effectiveCapacity(Channel channel) const noexcept;

  // --- Introspection -------------------------------------------------------
  BytesPerSec capacity(Channel channel) const noexcept;
  std::size_t activeTransfers(Channel channel) const noexcept;
  Bytes bytesMoved(Channel channel) const noexcept;
  Bytes streamBytes(StreamId stream) const;
  std::size_t streamCount() const noexcept;

  /// Sum of allocated rates over time (recorded when record_total is set).
  const StepSeries& totalRateSeries(Channel channel) const;

  /// Number of live transfers over time (the channel's backlog), recorded at
  /// the same solve points as totalRateSeries when record_total is set.
  const StepSeries& activeTransferSeries(Channel channel) const;

  /// Per-stream allocated-rate series; requires setRecordStream(stream,true).
  const StepSeries& streamRateSeries(StreamId stream, Channel channel) const;

  /// True if current total demand exceeds capacity on the channel, i.e. at
  /// least one transfer is held below its cap-free fair share ("contention"
  /// in the sense of Fig. 1's limit-during-contention policy).
  bool contended(Channel channel) const noexcept;

  /// Request a resolve of the channel at the current virtual time without
  /// changing any solve input (subject to the recompute quantum, like any
  /// other dirty notification). With unchanged inputs and `now` before the
  /// channel's next-interesting-time bound this is an O(1) lazy skip; tests
  /// and benchmarks use it to exercise exactly that path.
  void poke(Channel channel);

  /// Counters for the lazy-settle resolve path (test/bench introspection).
  struct ResolveStats {
    /// Resolves that ran the settle/complete/sweep machinery.
    std::uint64_t executed = 0;
    /// Resolves proven no-ops by the next-interesting-time bound. The
    /// force_full_resolve reference mode takes the identical skip but
    /// additionally verifies (without mutating state) that no transfer
    /// could have drained, so the counters match across modes.
    std::uint64_t lazy_skipped = 0;
    /// Two-level solves actually run (<= executed).
    std::uint64_t full_solves = 0;
    /// Transfers that completed with a Faulted status (fault plan verdicts).
    std::uint64_t faulted_transfers = 0;
    /// Effective-capacity changes applied (degradation/blackout edges).
    std::uint64_t capacity_edges = 0;
  };
  ResolveStats resolveStats(Channel channel) const noexcept;

  /// The channel's current next-interesting-time bound: the earliest virtual
  /// time at which an active transfer could cross the drain threshold under
  /// current rates (+inf when none can, -inf before the first resolve).
  sim::Time nextInterestingTime(Channel channel) const noexcept;

  /// Publish per-channel resolve counters and traffic totals into `registry`
  /// under "pfs.<channel>.*".
  void exportMetrics(obs::MetricsRegistry& registry) const;

 private:
  struct Transfer;
  struct Stream;
  struct ChannelState;

  ChannelState& chan(Channel channel) noexcept;
  const ChannelState& chan(Channel channel) const noexcept;

  /// Settle progress, complete drained transfers, re-solve rates (skipped
  /// when nothing changed since the last solve), reschedule the completion
  /// sweep.
  void resolve(Channel channel);

  /// The two-level weighted max-min solve over the channel's active
  /// transfers (allocation-free: reuses the channel's scratch buffers).
  void solveRates(ChannelState& cs, Channel channel, sim::Time now);

  /// Request a (possibly quantized) resolve.
  void markDirty(Channel channel);

  /// Record that the channel's solve inputs changed (membership, caps,
  /// weights); the next resolve must re-run the full solve.
  void noteSolveInputChanged(Channel channel);

  /// Recompute a channel's compound degradation factor from its active
  /// windows at `now` (from-scratch product: fp-exact and order-independent).
  void refreshChannelFactor(Channel channel, sim::Time now);

  /// Recompute a stream's straggler multiplier from its windows at `now`.
  void refreshStragglerFactor(StreamId stream, sim::Time now);

  /// Post resolve-triggering events at a fault window's begin/end edges that
  /// refresh the channel's (or stream's) factor before the solve runs.
  void scheduleDegradationEdges(Channel channel, fault::TimeWindow window);
  void scheduleStragglerEdges(StreamId stream, fault::TimeWindow window);

  sim::Simulation& sim_;
  LinkConfig config_;
  Rng noise_rng_;
  std::vector<std::unique_ptr<Stream>> streams_;
  /// Streams with setRecordStream(.., true); lets the per-resolve
  /// zero-rate recording loop skip the (possibly huge) non-recorded rest.
  std::vector<StreamId> recorded_streams_;
  std::unique_ptr<ChannelState> channels_[kChannels];

  // --- Fault-plane state ---------------------------------------------------
  /// Installed plan (null on a fault-free link); supplies transfer verdicts.
  const fault::FaultPlan* fault_plan_ = nullptr;
  /// Monotone id handed to each transfer; keys the deterministic verdict.
  std::uint64_t next_transfer_serial_ = 0;
  /// Degradation windows per channel (blackouts appear on both channels with
  /// factor 0). Kept for from-scratch factor refresh at window edges.
  std::vector<fault::DegradationEvent> degradations_[kChannels];
  /// Straggler windows, scanned on refresh (tiny: one per injected fault).
  std::vector<fault::StragglerEvent> stragglers_;
  /// Per-stream active straggler multiplier (1.0 = unaffected). Sized lazily
  /// on the first applyStraggler so fault-free links allocate nothing.
  std::vector<double> straggler_factor_;
};

}  // namespace iobts::pfs
