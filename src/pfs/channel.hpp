// PFS channel and stream vocabulary.
//
// Extracted from shared_link.hpp so that low-level modules (the fault plane
// in src/fault) can name channels and streams without pulling in -- or link
// against -- the SharedLink itself.
#pragma once

#include <cstdint>

namespace iobts::pfs {

enum class Channel : int { Read = 0, Write = 1 };
inline constexpr std::size_t kChannels = 2;

inline constexpr const char* channelName(Channel ch) noexcept {
  return ch == Channel::Read ? "read" : "write";
}

using StreamId = std::uint32_t;

}  // namespace iobts::pfs
