// Weighted max-min fair allocation with per-item rate caps.
//
// This is the bandwidth-sharing model of the simulated parallel file system:
// concurrent transfers (or streams) receive a weighted fair share of the
// channel capacity, except that no item ever receives more than its cap
// (caps come from the user-level limiter, per-transfer noise, or job QoS).
//
// Algorithm: progressive filling. Sort items by cap/weight; raise the fill
// level lambda; items whose cap is below lambda*weight saturate at their cap;
// the rest receive lambda*weight. Work-conserving: the full capacity is
// distributed unless every item is cap-saturated.
//
// Two entry points share one implementation:
//   * fairShare()      -- convenience API returning freshly allocated vectors;
//   * fairShareInto()  -- hot-path API writing into caller-owned buffers.
// The hot path (SharedLink::resolve) re-solves on every transfer join /
// completion / cap change, so fairShareInto keeps per-call allocations at
// zero: the caller passes a FairShareScratch whose buffers (sort order,
// precomputed cap/weight ratios) are reused across solves. Both produce
// bit-identical allocations.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/units.hpp"

namespace iobts::pfs {

struct FairShareItem {
  double weight = 1.0;                      // > 0
  std::optional<BytesPerSec> cap{};         // nullopt = uncapped
};

struct FairShareResult {
  std::vector<BytesPerSec> allocation;  // same order as input
  BytesPerSec total = 0.0;              // sum of allocations
  double fill_level = 0.0;              // final lambda (rate per unit weight)
};

/// Reusable buffers for fairShareInto; grows to the largest item count seen
/// and never shrinks, so steady-state solves do not allocate.
struct FairShareScratch {
  std::vector<std::uint32_t> order;  // item indices sorted by cap/weight
  std::vector<double> ratio;         // precomputed cap/weight per item
};

/// Totals of a solve performed by fairShareInto (the allocations themselves
/// land in the caller's buffer).
struct FairShareStats {
  BytesPerSec total = 0.0;
  double fill_level = 0.0;
};

/// Allocate `capacity` across `items`, writing per-item allocations into
/// `allocation` (resized to items.size(); existing capacity is reused).
/// Weights and caps must be non-negative and non-NaN; zero-weight items
/// receive 0. Allocation-free once scratch/output capacities are warm.
FairShareStats fairShareInto(std::span<const FairShareItem> items,
                             BytesPerSec capacity, FairShareScratch& scratch,
                             std::vector<BytesPerSec>& allocation);

/// Convenience wrapper over fairShareInto returning owned vectors.
FairShareResult fairShare(const std::vector<FairShareItem>& items,
                          BytesPerSec capacity);

}  // namespace iobts::pfs
