// Weighted max-min fair allocation with per-item rate caps.
//
// This is the bandwidth-sharing model of the simulated parallel file system:
// concurrent transfers (or streams) receive a weighted fair share of the
// channel capacity, except that no item ever receives more than its cap
// (caps come from the user-level limiter, per-transfer noise, or job QoS).
//
// Algorithm: progressive filling. Sort items by cap/weight; raise the fill
// level lambda; items whose cap is below lambda*weight saturate at their cap;
// the rest receive lambda*weight. Work-conserving: the full capacity is
// distributed unless every item is cap-saturated.
#pragma once

#include <optional>
#include <vector>

#include "util/units.hpp"

namespace iobts::pfs {

struct FairShareItem {
  double weight = 1.0;                      // > 0
  std::optional<BytesPerSec> cap{};         // nullopt = uncapped
};

struct FairShareResult {
  std::vector<BytesPerSec> allocation;  // same order as input
  BytesPerSec total = 0.0;              // sum of allocations
  double fill_level = 0.0;              // final lambda (rate per unit weight)
};

/// Allocate `capacity` across `items`. Capacity and weights must be
/// non-negative; zero-weight items receive min(cap, 0) = 0.
FairShareResult fairShare(const std::vector<FairShareItem>& items,
                          BytesPerSec capacity);

}  // namespace iobts::pfs
