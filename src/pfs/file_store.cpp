#include "pfs/file_store.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace iobts::pfs {

bool FileStore::create(const std::string& path) {
  return files_.try_emplace(path).second;
}

bool FileStore::remove(const std::string& path) {
  return files_.erase(path) > 0;
}

bool FileStore::exists(const std::string& path) const {
  return files_.count(path) > 0;
}

Bytes FileStore::size(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end() || it->second.empty()) return 0;
  return std::prev(it->second.end())->second.end();
}

void FileStore::write(const std::string& path, Bytes offset, Bytes length,
                      ContentTag tag) {
  if (length == 0) {
    files_.try_emplace(path);
    return;
  }
  ExtentMap& extents = files_[path];
  const Bytes write_end = offset + length;
  IOBTS_CHECK(write_end > offset, "extent overflow");

  // Find the first extent that could overlap: the one before `offset` may
  // reach into the window.
  auto it = extents.lower_bound(offset);
  if (it != extents.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end() > offset) it = prev;
  }

  // Carve out the overlapped region.
  while (it != extents.end() && it->second.offset < write_end) {
    Extent old = it->second;
    it = extents.erase(it);
    if (old.offset < offset) {
      // Left remainder survives.
      Extent left{old.offset, offset - old.offset, old.tag};
      extents.emplace(left.offset, left);
    }
    if (old.end() > write_end) {
      // Right remainder survives.
      Extent right{write_end, old.end() - write_end, old.tag};
      it = extents.emplace(right.offset, right).first;
    }
  }
  extents.emplace(offset, Extent{offset, length, tag});
}

std::vector<Extent> FileStore::read(const std::string& path, Bytes offset,
                                    Bytes length) const {
  std::vector<Extent> out;
  const auto file_it = files_.find(path);
  if (file_it == files_.end() || length == 0) return out;
  const ExtentMap& extents = file_it->second;
  const Bytes read_end = offset + length;

  auto it = extents.lower_bound(offset);
  if (it != extents.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end() > offset) it = prev;
  }
  for (; it != extents.end() && it->second.offset < read_end; ++it) {
    const Extent& e = it->second;
    const Bytes lo = std::max(e.offset, offset);
    const Bytes hi = std::min(e.end(), read_end);
    if (hi > lo) out.push_back(Extent{lo, hi - lo, e.tag});
  }
  return out;
}

bool FileStore::verify(const std::string& path, Bytes offset, Bytes length,
                       ContentTag tag) const {
  if (length == 0) return true;
  const auto pieces = read(path, offset, length);
  Bytes cursor = offset;
  for (const Extent& e : pieces) {
    if (e.offset != cursor) return false;  // hole
    if (e.tag != tag) return false;        // stale or foreign data
    cursor = e.end();
  }
  return cursor == offset + length;
}

Bytes FileStore::totalBytes() const noexcept {
  Bytes total = 0;
  for (const auto& [path, extents] : files_) {
    (void)path;
    for (const auto& [off, e] : extents) {
      (void)off;
      total += e.length;
    }
  }
  return total;
}

}  // namespace iobts::pfs
