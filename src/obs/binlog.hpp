// Flight-recorder binary trace container ("binlog").
//
// Chrome trace JSON is great to *look at* and terrible to *stream*: every
// event costs a Json object allocation plus ~200 bytes of text. The binlog
// is the compact on-disk twin of the live stream -- a versioned,
// length-prefixed, FNV-checksummed chunk container mirroring the src/ckpt
// checkpoint discipline:
//
//   magic[8]  = "IOBTRCE\n"
//   u32       format version (little-endian; currently 1)
//   chunks, in order; per chunk:
//     u32     chunk kind (strings / events / meta / footer)
//     u64     payload length, then payload bytes
//     u64     binlogChecksum() of the payload bytes
//   (the footer chunk is always last)
//   u64       trailer digest: FNV-1a over the words
//             [magic, version, then per chunk: kind, length, checksum]
//
// Checksums (binlogChecksum) are four rotate-xor lanes over little-endian
// 64-bit words -- word j feeds lane j % 4 as lane = rotl(lane, 1) ^ word,
// the lanes are compressed with FNV-1a and the payload length bound last,
// and a final partial word is zero-padded. Byte-wise FNV is a serial
// xor-multiply chain at ~4 cycles per *byte*; the lane pass has no
// multiplies at all, so the writer folds each record into the running
// lanes the moment it is encoded (on x86-64, all four lanes in one vector
// register) and sealing a chunk never re-reads its payload. The trailer
// seals the chunk *sequence* rather than re-hashing every file byte:
// payload integrity is already sealed per chunk, so the trailer only needs
// to bind the header and each chunk's (kind, length, checksum) summary --
// O(1) per chunk instead of a second full pass over the event stream.
//
// Chunk payloads (all integers little-endian, doubles as raw IEEE-754 bit
// patterns, so the encoding is identical on every host and round-trips
// exactly):
//
//   strings:  u32 count, then per string u32 length + bytes. Ids are
//             assigned implicitly in file order (append to the table); an
//             event may only reference ids from *earlier* chunks.
//   events:   packed 64-byte records, nothing else -- the record count is
//             payload length / 64 (a payload that is not a whole number of
//             records is Malformed). Record layout, deliberately identical
//             to the in-memory TraceEvent through its first 56 bytes so
//             encoding is one bulk copy plus the interned-ids word:
//             f64 ts @0, f64 dur @8, u32 pid @16, u32 tid @20,
//             u32 phase @24, u32 reserved=0 @28, f64 value @32,
//             u64 wall_ns @40, u64 flow @48, u32 category id @56,
//             u32 name id @60.
//   meta:     u32 process-name count, per entry u32 pid + u32 len + bytes;
//             u32 thread-name count, per entry u32 pid + u32 tid +
//             u32 len + bytes.
//   footer:   u64 event count, u64 string count, u64 recorded,
//             u64 dropped, u64 streamed (the sink's counters at close --
//             exactly what the live streamer writes into "otherData").
//
// The writer hangs off TraceSink's drain hook like a TraceStreamer, but
// drains through TraceSink::drainSegments -- events are encoded straight
// out of the ring with no staging vector and no per-event allocation,
// which is what makes the binary sink *cheaper* than the streamed JSON
// sink (BM_DispatchTracingBinary vs BM_DispatchTracingStreamed in
// BENCH_obs_overhead.json).
//
// Reading is strict, ckpt-style: every length is bounds-checked before
// use, per-chunk checksums are verified before payloads are surfaced,
// string references are validated, trailing bytes after the file checksum
// are an error, and every failure carries a BinlogError::Kind naming the
// *first* defect. The corrupt-trace corpus under traces/invalid/ pins one
// diagnostic per kind.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

// x86-64 builds get a runtime-dispatched AVX2 fast path for the writer's
// record encoder (baseline code stays generic; the wide path is selected
// per-process with __builtin_cpu_supports).
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define IOBTS_BINLOG_X86 1
#else
#define IOBTS_BINLOG_X86 0
#endif

namespace iobts::obs {

/// Container format version this build writes and the only one it reads.
/// Bump on any change to the chunk layout or the packed event record.
inline constexpr std::uint32_t kBinlogVersion = 1;

/// The 8-byte file magic.
inline constexpr char kBinlogMagic[8] = {'I', 'O', 'B', 'T', 'R', 'C', 'E',
                                         '\n'};

/// Bytes of one packed event record inside an events chunk (eight words;
/// the alignment is what lets the writer checksum records incrementally).
inline constexpr std::size_t kBinlogEventBytes = 64;

/// Chunk kind tags (the u32 leading each chunk). Exposed so the corrupt-
/// corpus generator and structural tests can build containers by hand.
namespace binchunk {
inline constexpr std::uint32_t kStrings = 1;
inline constexpr std::uint32_t kEvents = 2;
inline constexpr std::uint32_t kMeta = 3;
inline constexpr std::uint32_t kFooter = 4;
}  // namespace binchunk

/// Everything that can be wrong with a binary trace, from the outside in.
/// The reader never continues past a defect.
enum class BinlogErrorKind : int {
  Io,             ///< cannot open / read / write the file at all
  Truncated,      ///< file ends before a declared length is satisfied
  BadMagic,       ///< first 8 bytes are not "IOBTRCE\n"
  BadVersion,     ///< container version this build does not speak
  ChunkChecksum,  ///< a chunk payload fails its FNV checksum
  FileChecksum,   ///< the whole-file trailer checksum fails
  Malformed,      ///< structurally invalid (unknown chunk kind, bad counts,
                  ///< payload size mismatch, trailing bytes)
  MissingFooter,  ///< file ends cleanly but no footer chunk was seen
  BadStringRef,   ///< an event references a string id not yet defined
};

/// Stable lowercase name for a BinlogErrorKind ("truncated", "bad_magic",
/// ...). The invalid-corpus sweep keys on these.
const char* binlogErrorKindName(BinlogErrorKind kind) noexcept;

/// The container's checksum: four rotate-xor lanes over little-endian
/// 64-bit words compressed with FNV-1a, final partial word zero-padded
/// (see the format comment above). Exposed so the corrupt-corpus generator
/// and structural tests can build and repair containers by hand.
std::uint64_t binlogChecksum(const char* data, std::size_t size) noexcept;
inline std::uint64_t binlogChecksum(const std::string& bytes) noexcept {
  return binlogChecksum(bytes.data(), bytes.size());
}

/// Recompute the trailer digest for a complete container body (everything
/// up to but excluding the trailing 8-byte digest) by walking its chunk
/// sequence. Throws BinlogError (Truncated) if the body is not a whole
/// number of chunks. Corpus generation and tamper-and-repair tests use
/// this; the reader folds the same digest incrementally while it parses.
std::uint64_t binlogTrailerDigest(const char* data, std::size_t size);
inline std::uint64_t binlogTrailerDigest(const std::string& body) {
  return binlogTrailerDigest(body.data(), body.size());
}

class BinlogError : public std::runtime_error {
 public:
  BinlogError(BinlogErrorKind kind, std::string message)
      : std::runtime_error(std::move(message)), kind_(kind) {}

  BinlogErrorKind kind() const noexcept { return kind_; }
  const char* kindName() const noexcept { return binlogErrorKindName(kind_); }

 private:
  BinlogErrorKind kind_;
};

/// Sink accounting snapshot stored in the footer -- the same three totals
/// the live streamer writes into the Chrome document's "otherData".
struct BinlogTotals {
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t streamed = 0;
};

/// One decoded event: a TraceEvent with the string pointers replaced by
/// indices into BinaryTrace::strings.
struct BinEvent {
  sim::Time ts = 0.0;
  sim::Time dur = 0.0;
  std::uint32_t category = 0;
  std::uint32_t name = 0;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  Phase phase = Phase::Instant;
  double value = 0.0;
  std::uint64_t wall_ns = 0;
  std::uint64_t flow = 0;
};

/// A decoded binary trace: events in file (= recording) order plus the
/// interned string table, track names, and footer totals.
struct BinaryTrace {
  std::uint32_t version = kBinlogVersion;
  std::vector<std::string> strings;
  std::vector<BinEvent> events;
  std::map<std::uint32_t, std::string> process_names;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> thread_names;
  BinlogTotals totals;

  /// Materialize event `i` as a TraceEvent whose category/name point into
  /// `strings`. Valid while this BinaryTrace (and its string table) lives
  /// and is not mutated.
  TraceEvent event(std::size_t i) const;
};

/// Strict parse of container bytes; `origin` names the source (file path or
/// "<memory>") in diagnostics. Throws BinlogError.
BinaryTrace decodeBinaryTrace(const std::string& bytes,
                              const std::string& origin);

/// Read + decodeBinaryTrace. Throws BinlogError (Io if unreadable).
BinaryTrace readBinaryTrace(const std::string& path);

/// True when `bytes` begin with the binary-trace magic. Offline tools use
/// this to tell a flight-recorder file from Chrome trace JSON and point the
/// user at the right tool.
bool looksLikeBinaryTrace(const std::string& bytes) noexcept;

struct BinaryTraceWriterConfig {
  /// Drain-hook watermarks, identical semantics to TraceStreamerConfig: a
  /// drain fires when ring occupancy reaches this fraction of capacity...
  double occupancy_watermark = 0.5;
  /// ...or when an event lands this many virtual seconds past the previous
  /// drain (0 = occupancy only).
  sim::Time time_watermark = 0.0;
  /// File mode: finished chunks accumulate in memory and flush to the file
  /// once the staging buffer exceeds this size (and at close).
  std::size_t flush_bytes = 1 << 20;
};

/// Incremental binary exporter bound to one TraceSink. Construction
/// installs the sink's drain hook (one streamer/writer per sink at a
/// time); close()/destruction drains the remainder, appends the meta and
/// footer chunks plus the file checksum, and uninstalls the hook.
///
/// Determinism: the byte stream is a pure function of the recorded events
/// and the sink's registered track names, so with wall capture off two
/// identical runs produce byte-identical binlogs at any thread count (the
/// sharded coordinator replays staged events in canonical shard order
/// before they ever reach the sink).
class BinaryTraceWriter {
 public:
  /// File mode: stream the container to `path`. Check good() after
  /// construction for open failures.
  BinaryTraceWriter(TraceSink& sink, const std::string& path,
                    BinaryTraceWriterConfig config = {});
  /// Memory mode: append the container bytes to `*out`. A null `out`
  /// discards the bytes after accounting -- the benchmark configuration,
  /// measuring encode cost without unbounded retention.
  BinaryTraceWriter(TraceSink& sink, std::string* out,
                    BinaryTraceWriterConfig config = {});
  ~BinaryTraceWriter();

  BinaryTraceWriter(const BinaryTraceWriter&) = delete;
  BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

  /// Drain whatever the ring currently holds (also called by the sink's
  /// watermark trigger). Safe from any thread.
  void drain();

  /// Encode `count` events directly (bypassing the sink). The drain path
  /// uses this internally; benchmarks and the sharded replay path may call
  /// it straight.
  void append(const TraceEvent* events, std::size_t count);

  /// Final drain + meta/footer chunks + file checksum + hook removal.
  /// Idempotent. Returns false if any file write failed (memory mode
  /// always returns true).
  bool close();

  bool good() const;
  /// Events encoded so far.
  std::uint64_t events() const;
  /// Drain batches delivered so far.
  std::uint64_t batches() const;
  /// Container bytes emitted so far (finished chunks; excludes the open
  /// events chunk still being buffered).
  std::uint64_t bytesWritten() const;

 private:
  static void drainThunk(void* ctx);
  static void segmentThunk(void* ctx, const TraceEvent* events,
                           std::size_t count);
  void appendLocked(const TraceEvent* events, std::size_t count);
  std::uint32_t internLocked(const char* text);
  bool probeSlot(const char* text, std::uint32_t& id) const noexcept;
#if IOBTS_BINLOG_X86
  struct InternSlot;
  // Tight-loop encoder for appendLocked: packs records and folds the
  // checksum lanes with 256-bit ops (all four lanes live in one register).
  // Stops at an intern miss; returns how many records it encoded and
  // advances ev/dst. Only called when use_avx2_ is set.
  __attribute__((target("avx2"))) static std::size_t encodeRunAvx2(
      const InternSlot* slots, const TraceEvent*& ev, std::size_t count,
      char*& dst, std::uint64_t* lanes);
#endif
  void sealEventsChunkLocked();
  void emitChunkLocked(std::uint32_t kind, const std::string& payload);
  void emitChunkLocked(std::uint32_t kind, const char* data, std::size_t size,
                       std::uint64_t checksum);
  void growPendingLocked(std::size_t need);
  void resetChunkLanesLocked();
  void emitRawLocked(const char* data, std::size_t size);
  void flushFileLocked(bool force);

  TraceSink& sink_;
  mutable std::mutex mutex_;
  BinaryTraceWriterConfig config_;
  std::ofstream file_;
  bool file_mode_ = false;
  bool file_ok_ = true;
  bool closed_ = false;
  std::string* out_ = nullptr;  // memory mode target (may be null: discard)
  std::string staged_;          // finished chunks awaiting flush (file mode)
  // Packed records of the open events chunk. A raw buffer, not a
  // std::string: the hot loop claims the whole batch's bytes with one
  // capacity check and encodes records in place, with no per-record
  // size/capacity bookkeeping.
  std::unique_ptr<char[]> pending_data_;
  char* pending_base_ = nullptr;  // 64-byte-aligned start within pending_data_
                                  // (records stay 32-byte aligned for the
                                  // wide encoder's streaming stores)
  std::size_t pending_size_ = 0;
  std::size_t pending_cap_ = 0;
  std::string pending_strings_;  // new string-table entries not yet emitted
  std::uint32_t pending_string_count_ = 0;
  std::uint64_t trailer_fnv_;  // digest of header + chunk summaries so far
  std::uint64_t chunk_lanes_[4];  // incremental checksum lanes of the open
                                  // events chunk (see binlogChecksum)
  // String interning: a pointer-keyed open-addressing fast path in front of
  // a content-keyed map (the slow path unifies distinct literals with equal
  // contents, so ids depend only on the event stream).
  static constexpr std::size_t kInternSlots = 512;
  struct InternSlot {
    const char* ptr = nullptr;
    std::uint32_t id = 0;
  };
  InternSlot intern_slots_[kInternSlots] = {};
#if IOBTS_BINLOG_X86
  const bool use_avx2_ = __builtin_cpu_supports("avx2");
#endif
  std::map<std::string, std::uint32_t> intern_by_content_;
  std::uint32_t next_string_id_ = 0;
  std::uint64_t events_written_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace iobts::obs
