// Flight-recorder binary trace container ("binlog").
//
// Chrome trace JSON is great to *look at* and terrible to *stream*: every
// event costs a Json object allocation plus ~200 bytes of text. The binlog
// is the compact on-disk twin of the live stream -- a versioned,
// length-prefixed, FNV-checksummed chunk container mirroring the src/ckpt
// checkpoint discipline:
//
//   magic[8]  = "IOBTRCE\n"
//   u32       format version (little-endian; 1 or 2)
//   chunks, in order; per chunk:
//     u32     chunk kind (strings / events / meta / index / footer)
//     u64     payload length, then payload bytes
//     u64     binlogChecksum() of the payload bytes
//   (the footer chunk is always last)
//   u64       trailer digest: FNV-1a over the words
//             [magic, version, then per chunk: kind, length, checksum]
//
// Checksums (binlogChecksum) are four rotate-xor lanes over little-endian
// 64-bit words -- word j feeds lane j % 4 as lane = rotl(lane, 1) ^ word,
// the lanes are compressed with FNV-1a and the payload length bound last,
// and a final partial word is zero-padded. Byte-wise FNV is a serial
// xor-multiply chain at ~4 cycles per *byte*; the lane pass has no
// multiplies at all, so the v1 writer folds each record into the running
// lanes the moment it is encoded (on x86-64, all four lanes in one vector
// register) and sealing a chunk never re-reads its payload. The trailer
// seals the chunk *sequence* rather than re-hashing every file byte:
// payload integrity is already sealed per chunk, so the trailer only needs
// to bind the header and each chunk's (kind, length, checksum) summary --
// O(1) per chunk instead of a second full pass over the event stream.
//
// Version 1 chunk payloads (all integers little-endian, doubles as raw
// IEEE-754 bit patterns, so the encoding is identical on every host and
// round-trips exactly):
//
//   strings:  u32 count, then per string u32 length + bytes. Ids are
//             assigned implicitly in file order (append to the table); an
//             event may only reference ids from *earlier* chunks.
//   events:   packed 64-byte records, nothing else -- the record count is
//             payload length / 64 (a payload that is not a whole number of
//             records is Malformed). Record layout, deliberately identical
//             to the in-memory TraceEvent through its first 56 bytes so
//             encoding is one bulk copy plus the interned-ids word:
//             f64 ts @0, f64 dur @8, u32 pid @16, u32 tid @20,
//             u32 phase @24, u32 reserved=0 @28, f64 value @32,
//             u64 wall_ns @40, u64 flow @48, u32 category id @56,
//             u32 name id @60.
//   meta:     u32 process-name count, per entry u32 pid + u32 len + bytes;
//             u32 thread-name count, per entry u32 pid + u32 tid +
//             u32 len + bytes.
//   footer:   u64 event count, u64 string count, u64 recorded,
//             u64 dropped, u64 streamed (the sink's counters at close --
//             exactly what the live streamer writes into "otherData").
//
// Version 2 keeps the container frame, the meta chunk and every checksum
// rule, and changes three things (see DESIGN.md for the full diagram):
//
//   * strings/events chunks are *shard-tagged* and *delta-encoded*. Both
//     begin with `u32 shard, u32 count`; string ids are per-shard. An
//     events record is a flags byte (bits 0-2 phase, bit 3 dur differs
//     from the previous record's, bit 4 value differs, bit 5 flow != 0,
//     bit 6 wall_ns differs) followed by varints: pid, tid, category id,
//     name id, zigzag(ts bit-pattern delta), then the optional fields the
//     flags declare (zigzag bit-pattern deltas for wall/dur/value, plain
//     varint for flow). Delta state resets per chunk, so every chunk
//     decodes independently -- what makes the index seekable.
//   * an index chunk (kind 5, emitted after meta, right before the
//     footer): u32 entry count, u32 shard count, then one 48-byte entry
//     per preceding chunk -- u32 kind, u32 shard, u64 file offset (of the
//     chunk's kind word), u64 payload length, u64 event count,
//     f64 t_min, f64 t_max (virtual-time cover of the chunk's events,
//     ts..ts+dur). A windowed reader seeks the footer, then the index,
//     then only the chunks whose [t_min, t_max] intersect the window.
//   * the footer grows a sixth word: u64 index chunk offset. The v2
//     footer chunk is therefore always the fixed 76-byte file tail
//     (12-byte chunk header + 48-byte payload + 8-byte checksum + 8-byte
//     trailer), which is what lets a reader find it without scanning.
//
// The writer hangs off TraceSink's drain hook like a TraceStreamer, but
// drains through TraceSink::drainSegments -- events are encoded straight
// out of the ring with no staging vector and no per-event allocation,
// which is what makes the binary sink *cheaper* than the streamed JSON
// sink (BM_DispatchTracingBinary vs BM_DispatchTracingStreamed in
// BENCH_obs_overhead.json).
//
// Reading is strict, ckpt-style: every length is bounds-checked before
// use, per-chunk checksums are verified before payloads are surfaced,
// string references are validated against the owning shard's table,
// the index chunk is cross-checked entry-by-entry against the chunks
// actually decoded, trailing bytes after the file checksum are an error,
// and every failure carries a BinlogError::Kind naming the *first*
// defect. The corrupt-trace corpus under traces/invalid/ pins one
// diagnostic per kind. Multi-shard traces are merged canonically on read
// -- events sorted by (ts, shard, per-shard sequence), string ids
// remapped to a content-deduplicated global table in merged order -- so
// reports derived from a sharded recording are byte-identical no matter
// how the shards' chunks interleaved in the file.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

// x86-64 builds get a runtime-dispatched AVX2 fast path for the v1 record
// encoder (baseline code stays generic; the wide path is selected
// per-process with __builtin_cpu_supports).
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define IOBTS_BINLOG_X86 1
#else
#define IOBTS_BINLOG_X86 0
#endif

namespace iobts::obs {

/// Container format version this build writes by default. The reader
/// accepts 1 (fixed 64-byte records, no index) and 2 (delta-encoded
/// shard-tagged chunks + seekable index).
inline constexpr std::uint32_t kBinlogVersion = 2;
inline constexpr std::uint32_t kBinlogVersionV1 = 1;

/// The 8-byte file magic.
inline constexpr char kBinlogMagic[8] = {'I', 'O', 'B', 'T', 'R', 'C', 'E',
                                         '\n'};

/// Bytes of one packed v1 event record inside an events chunk (eight
/// words; the alignment is what lets the v1 writer checksum records
/// incrementally). v2 records are variable-length (kBinlogV2MaxRecordBytes
/// is the worst case).
inline constexpr std::size_t kBinlogEventBytes = 64;
inline constexpr std::size_t kBinlogV2MaxRecordBytes = 72;

/// Shard ids in v2 chunks must be below this (a 16-bit budget catches
/// corrupted tags long before a resize tries to honor them).
inline constexpr std::uint32_t kBinlogMaxShards = 1u << 16;

/// v2 fixed sizes: one index entry, the footer payload, and the complete
/// fixed file tail (footer chunk + trailer digest).
inline constexpr std::size_t kBinlogIndexEntryBytes = 48;
inline constexpr std::size_t kBinlogFooterBytesV1 = 40;
inline constexpr std::size_t kBinlogFooterBytes = 48;
inline constexpr std::size_t kBinlogTailBytes = 12 + kBinlogFooterBytes + 8 + 8;

/// Chunk kind tags (the u32 leading each chunk). Exposed so the corrupt-
/// corpus generator and structural tests can build containers by hand.
namespace binchunk {
inline constexpr std::uint32_t kStrings = 1;
inline constexpr std::uint32_t kEvents = 2;
inline constexpr std::uint32_t kMeta = 3;
inline constexpr std::uint32_t kFooter = 4;
inline constexpr std::uint32_t kIndex = 5;
}  // namespace binchunk

/// Everything that can be wrong with a binary trace, from the outside in.
/// The reader never continues past a defect.
enum class BinlogErrorKind : int {
  Io,             ///< cannot open / read / write the file at all
  Truncated,      ///< file ends before a declared length is satisfied
  BadMagic,       ///< first 8 bytes are not "IOBTRCE\n"
  BadVersion,     ///< container version this build does not speak
  ChunkChecksum,  ///< a chunk payload fails its FNV checksum
  FileChecksum,   ///< the whole-file trailer checksum fails
  Malformed,      ///< structurally invalid (unknown chunk kind, bad counts,
                  ///< payload size mismatch, trailing bytes)
  MissingFooter,  ///< file ends cleanly but no footer chunk was seen
  BadStringRef,   ///< an event references a string id not yet defined
  BadIndex,       ///< index chunk absent/corrupt or contradicting the chunks
  BadShard,       ///< a chunk carries a shard id outside the sane range
};

/// Stable lowercase name for a BinlogErrorKind ("truncated", "bad_magic",
/// ...). The invalid-corpus sweep keys on these.
const char* binlogErrorKindName(BinlogErrorKind kind) noexcept;

/// The container's checksum: four rotate-xor lanes over little-endian
/// 64-bit words compressed with FNV-1a, final partial word zero-padded
/// (see the format comment above). Exposed so the corrupt-corpus generator
/// and structural tests can build and repair containers by hand.
std::uint64_t binlogChecksum(const char* data, std::size_t size) noexcept;
inline std::uint64_t binlogChecksum(const std::string& bytes) noexcept {
  return binlogChecksum(bytes.data(), bytes.size());
}

/// Recompute the trailer digest for a complete container body (everything
/// up to but excluding the trailing 8-byte digest) by walking its chunk
/// sequence. Throws BinlogError (Truncated) if the body is not a whole
/// number of chunks. Corpus generation and tamper-and-repair tests use
/// this; the reader folds the same digest incrementally while it parses.
std::uint64_t binlogTrailerDigest(const char* data, std::size_t size);
inline std::uint64_t binlogTrailerDigest(const std::string& body) {
  return binlogTrailerDigest(body.data(), body.size());
}

class BinlogError : public std::runtime_error {
 public:
  BinlogError(BinlogErrorKind kind, std::string message)
      : std::runtime_error(std::move(message)), kind_(kind) {}

  BinlogErrorKind kind() const noexcept { return kind_; }
  const char* kindName() const noexcept { return binlogErrorKindName(kind_); }

 private:
  BinlogErrorKind kind_;
};

/// Sink accounting snapshot stored in the footer -- the same three totals
/// the live streamer writes into the Chrome document's "otherData".
struct BinlogTotals {
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t streamed = 0;
};

/// One decoded index entry (also what the writer pins into the v2 index
/// chunk): which chunk, whose shard, where in the file, and what virtual
/// time range its events cover.
struct BinlogIndexEntry {
  std::uint32_t kind = 0;
  std::uint32_t shard = 0;
  std::uint64_t offset = 0;  ///< file offset of the chunk's kind word
  std::uint64_t payload_len = 0;
  std::uint64_t event_count = 0;
  double t_min = 0.0;
  double t_max = 0.0;
};

/// Virtual-time window for the seeking reader. An event is inside the
/// window when its span [ts, ts + max(dur, 0)] intersects [from, to].
struct TraceWindow {
  double from = -std::numeric_limits<double>::infinity();
  double to = std::numeric_limits<double>::infinity();
};

/// Decode accounting: how much of the file the (windowed) reader actually
/// touched. The --from/--to acceptance gate asserts on these counters.
struct BinlogReadStats {
  bool used_index = false;  ///< false for v1 files (full decode + filter)
  std::uint64_t chunks_total = 0;
  std::uint64_t events_chunks_decoded = 0;
  std::uint64_t events_chunks_skipped = 0;
  std::uint64_t payload_bytes_skipped = 0;
  std::uint64_t events_decoded = 0;
  std::uint64_t events_in_window = 0;
};

/// One decoded event: a TraceEvent with the string pointers replaced by
/// indices into BinaryTrace::strings, plus the recording shard.
struct BinEvent {
  sim::Time ts = 0.0;
  sim::Time dur = 0.0;
  std::uint32_t category = 0;
  std::uint32_t name = 0;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  Phase phase = Phase::Instant;
  std::uint32_t shard = 0;
  double value = 0.0;
  std::uint64_t wall_ns = 0;
  std::uint64_t flow = 0;
};

/// A decoded binary trace: events in canonical order plus the interned
/// string table, track names, and footer totals. Single-shard traces
/// (every v1 file, and v2 files from one BinaryTraceWriter) keep exact
/// file = recording order; multi-shard traces are merged canonically by
/// (ts, shard, per-shard sequence) with string ids remapped to a global
/// content-deduplicated table in merged order.
struct BinaryTrace {
  std::uint32_t version = kBinlogVersion;
  std::uint32_t shard_count = 1;
  std::vector<std::string> strings;
  std::vector<BinEvent> events;
  std::map<std::uint32_t, std::string> process_names;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> thread_names;
  BinlogTotals totals;
  /// v2: the decoded index chunk (empty for v1 files).
  std::vector<BinlogIndexEntry> index;
  /// What the reader touched to produce this trace.
  BinlogReadStats stats;

  /// Materialize event `i` as a TraceEvent whose category/name point into
  /// `strings`. Valid while this BinaryTrace (and its string table) lives
  /// and is not mutated.
  TraceEvent event(std::size_t i) const;
};

/// Strict parse of container bytes; `origin` names the source (file path or
/// "<memory>") in diagnostics. Throws BinlogError.
BinaryTrace decodeBinaryTrace(const std::string& bytes,
                              const std::string& origin);

/// Read + decodeBinaryTrace. Throws BinlogError (Io if unreadable).
BinaryTrace readBinaryTrace(const std::string& path);

/// Windowed decode: seek the footer, then the index, then only the chunks
/// whose time range intersects `window` (strings and meta chunks are
/// always decoded -- events reference them). Events outside the window
/// inside a decoded chunk are filtered out. v1 files fall back to a full
/// decode + filter (stats.used_index stays false). The whole-file trailer
/// and the footer's count cross-checks are deliberately *not* verified on
/// this path -- skipped chunks were never read; per-chunk checksums and
/// the index cross-checks still gate everything that was.
BinaryTrace readBinaryTraceWindow(const std::string& path,
                                  const TraceWindow& window);
BinaryTrace decodeBinaryTraceWindow(const std::string& bytes,
                                    const std::string& origin,
                                    const TraceWindow& window);

/// True when `bytes` begin with the binary-trace magic. Offline tools use
/// this to tell a flight-recorder file from Chrome trace JSON and point the
/// user at the right tool.
bool looksLikeBinaryTrace(const std::string& bytes) noexcept;

namespace detail {

struct BinlogContainer;

/// Per-open-chunk delta-encoder state (v2): previous bit patterns the next
/// record's deltas are taken against, and the chunk's running time cover.
/// Resets at every chunk seal so chunks decode independently.
struct BinlogDeltaState {
  std::uint64_t ts_bits = 0;
  std::uint64_t wall = 0;
  std::uint64_t dur_bits = 0;
  std::uint64_t value_bits = 0;
  double t_min = 0.0;
  double t_max = 0.0;
  std::uint64_t count = 0;
};

}  // namespace detail

struct BinaryTraceWriterConfig {
  /// Drain-hook watermarks, identical semantics to TraceStreamerConfig: a
  /// drain fires when ring occupancy reaches this fraction of capacity...
  double occupancy_watermark = 0.5;
  /// ...or when an event lands this many virtual seconds past the previous
  /// drain (0 = occupancy only).
  sim::Time time_watermark = 0.0;
  /// File mode: finished chunks accumulate in memory and flush to the file
  /// once the staging buffer exceeds this size (and at close). Doubles as
  /// the events-chunk seal threshold, so small values make the file grow
  /// in small independently-decodable chunks -- what --follow tails.
  std::size_t flush_bytes = 1 << 20;
  /// Container version to write: kBinlogVersion (2) or kBinlogVersionV1.
  std::uint32_t version = kBinlogVersion;
  /// Shard tag stamped into every chunk this writer emits (v2 only).
  std::uint32_t shard = 0;
};

/// Incremental binary exporter bound to one TraceSink. Construction
/// installs the sink's drain hook (one streamer/writer per sink at a
/// time); close()/destruction drains the remainder, appends the meta,
/// index (v2) and footer chunks plus the file checksum, and uninstalls
/// the hook.
///
/// Determinism: the byte stream is a pure function of the recorded events
/// and the sink's registered track names, so with wall capture off two
/// identical runs produce byte-identical binlogs at any thread count (the
/// sharded coordinator replays staged events in canonical shard order
/// before they ever reach the sink).
class BinaryTraceWriter {
 public:
  /// File mode: stream the container to `path`. Check good() after
  /// construction for open failures.
  BinaryTraceWriter(TraceSink& sink, const std::string& path,
                    BinaryTraceWriterConfig config = {});
  /// Memory mode: append the container bytes to `*out`. A null `out`
  /// discards the bytes after accounting -- the benchmark configuration,
  /// measuring encode cost without unbounded retention.
  BinaryTraceWriter(TraceSink& sink, std::string* out,
                    BinaryTraceWriterConfig config = {});
  ~BinaryTraceWriter();

  BinaryTraceWriter(const BinaryTraceWriter&) = delete;
  BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

  /// Drain whatever the ring currently holds (also called by the sink's
  /// watermark trigger). Safe from any thread.
  void drain();

  /// Encode `count` events directly (bypassing the sink). The drain path
  /// uses this internally; benchmarks and the sharded replay path may call
  /// it straight.
  void append(const TraceEvent* events, std::size_t count);

  /// Final drain + meta/index/footer chunks + file checksum + hook
  /// removal. Idempotent. Returns false if any file write failed (memory
  /// mode always returns true).
  bool close();

  bool good() const;
  /// Events encoded so far.
  std::uint64_t events() const;
  /// Drain batches delivered so far.
  std::uint64_t batches() const;
  /// Container bytes emitted so far (finished chunks; excludes the open
  /// events chunk still being buffered).
  std::uint64_t bytesWritten() const;

 private:
  static void drainThunk(void* ctx);
  static void segmentThunk(void* ctx, const TraceEvent* events,
                           std::size_t count);
  void initLocked();
  void appendLocked(const TraceEvent* events, std::size_t count);
  void appendV1Locked(const TraceEvent* events, std::size_t count);
  void appendV2Locked(const TraceEvent* events, std::size_t count);
  std::uint32_t internLocked(const char* text);
  bool probeSlot(const char* text, std::uint32_t& id) const noexcept;
#if IOBTS_BINLOG_X86
  struct InternSlot;
  // Tight-loop encoder for appendV1Locked: packs records and folds the
  // checksum lanes with 256-bit ops (all four lanes live in one register).
  // Stops at an intern miss; returns how many records it encoded and
  // advances ev/dst. Only called when use_avx2_ is set.
  __attribute__((target("avx2"))) static std::size_t encodeRunAvx2(
      const InternSlot* slots, const TraceEvent*& ev, std::size_t count,
      char*& dst, std::uint64_t* lanes);
#endif
  void sealEventsChunkLocked();
  void growPendingLocked(std::size_t need);
  void resetChunkLanesLocked();
  void resetPendingLocked();

  TraceSink& sink_;
  mutable std::mutex mutex_;
  BinaryTraceWriterConfig config_;
  bool closed_ = false;
  std::unique_ptr<detail::BinlogContainer> container_;
  // Packed records of the open events chunk. A raw buffer, not a
  // std::string: the hot loop claims the whole batch's bytes with one
  // capacity check and encodes records in place, with no per-record
  // size/capacity bookkeeping. v2 reserves the first 8 bytes for the
  // shard/count chunk header, patched at seal.
  std::unique_ptr<char[]> pending_data_;
  char* pending_base_ = nullptr;  // 64-byte-aligned start within pending_data_
                                  // (v1 records stay 32-byte aligned for the
                                  // wide encoder's streaming stores)
  std::size_t pending_size_ = 0;
  std::size_t pending_cap_ = 0;
  std::string pending_strings_;  // new string-table entries not yet emitted
  std::uint32_t pending_string_count_ = 0;
  std::uint64_t chunk_lanes_[4];  // v1: incremental checksum lanes of the
                                  // open events chunk (see binlogChecksum)
  detail::BinlogDeltaState delta_;  // v2: per-chunk delta/cover state
  // String interning: a pointer-keyed open-addressing fast path in front of
  // a content-keyed map (the slow path unifies distinct literals with equal
  // contents, so ids depend only on the event stream).
  static constexpr std::size_t kInternSlots = 512;
  struct InternSlot {
    const char* ptr = nullptr;
    std::uint32_t id = 0;
  };
  InternSlot intern_slots_[kInternSlots] = {};
#if IOBTS_BINLOG_X86
  const bool use_avx2_ = __builtin_cpu_supports("avx2");
#endif
  std::map<std::string, std::uint32_t> intern_by_content_;
  std::uint32_t next_string_id_ = 0;
  std::uint64_t events_written_ = 0;
  std::uint64_t batches_ = 0;
};

/// One v2 container fed by *several* TraceSinks, one per shard -- the
/// sharded kernel's direct-recording path. Each attached sink gets a drain
/// hook that encodes straight into that shard's own delta encoder (its own
/// string table, its own open chunk), and finished shard-tagged chunks are
/// appended to the shared container in whatever order the workers finish
/// them. The *reader* merges shard streams canonically, so reports from a
/// sharded recording are byte-identical across worker thread counts even
/// though the files themselves need not be.
///
/// Lifecycle: attachShard() per staging sink at window setup (re-attach
/// with fresh sinks every run invocation -- the per-shard encoder and its
/// string table persist across generations); detachAll() before the
/// staging sinks die (final drain + totals snapshot); close() seals every
/// shard's open chunk in shard order and writes meta/index/footer.
class ShardedBinaryWriter {
 public:
  explicit ShardedBinaryWriter(const std::string& path,
                               BinaryTraceWriterConfig config = {});
  explicit ShardedBinaryWriter(std::string* out,
                               BinaryTraceWriterConfig config = {});
  ~ShardedBinaryWriter();

  ShardedBinaryWriter(const ShardedBinaryWriter&) = delete;
  ShardedBinaryWriter& operator=(const ShardedBinaryWriter&) = delete;

  /// Bind shard `shard`'s staging sink: installs its drain hook. Rebinding
  /// the same shard to a new sink (the next run invocation's fresh staging
  /// ring) keeps the shard's encoder and string table.
  void attachShard(std::uint32_t shard, TraceSink& sink);

  /// Final-drain every attached sink, fold its recorded/dropped counters
  /// into the footer totals, and uninstall the hooks. Must run before the
  /// staging sinks are destroyed. Idempotent.
  void detachAll();

  /// Track-name source for the meta chunk (usually the global sink the
  /// application registered names on). Must outlive close().
  void setNameSource(const TraceSink& sink);

  /// detachAll() + seal every shard's open chunk (ascending shard order) +
  /// meta/index/footer + file checksum. Idempotent. Returns false if any
  /// file write failed.
  bool close();

  bool good() const;
  std::uint64_t events() const;
  std::uint64_t bytesWritten() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Incremental reader for a *growing* v1/v2 container -- the engine behind
/// `iobts_profile --follow`. feed() consumes every complete, checksum-
/// valid chunk from the byte stream and buffers the incomplete tail; a
/// complete chunk failing its checksum (or a bad header) is real
/// corruption and throws. The index is rebuilt on the fly from the chunks
/// actually seen (liveIndex()); when the file's own index chunk arrives it
/// is cross-checked against it. After the footer chunk the 8 trailer bytes
/// are verified, and snapshot() of a fully-fed file is equivalent to
/// decodeBinaryTrace of the same bytes -- the follow report converges to
/// the offline one by construction.
class BinlogTailReader {
 public:
  explicit BinlogTailReader(std::string origin = "<follow>");
  ~BinlogTailReader();

  BinlogTailReader(const BinlogTailReader&) = delete;
  BinlogTailReader& operator=(const BinlogTailReader&) = delete;

  /// Consume the next `size` bytes of the stream. Throws BinlogError on
  /// any defect in a *complete* unit (header, chunk, trailer).
  void feed(const char* data, std::size_t size);
  void feed(const std::string& bytes) { feed(bytes.data(), bytes.size()); }

  bool headerSeen() const noexcept;
  /// Footer chunk decoded *and* trailer digest verified: the stream is a
  /// complete, self-consistent container.
  bool finished() const noexcept;
  std::uint64_t chunksConsumed() const noexcept;
  std::uint64_t eventsDecoded() const noexcept;
  /// Bytes buffered waiting for the rest of a partial chunk.
  std::uint64_t bufferedBytes() const noexcept;
  /// The index as rebuilt from consumed chunks.
  const std::vector<BinlogIndexEntry>& liveIndex() const noexcept;

  /// Canonically merged view of everything consumed so far.
  BinaryTrace snapshot() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace iobts::obs
