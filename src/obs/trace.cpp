#include "obs/trace.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace iobts::obs {

namespace {

std::uint64_t steadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TraceSink::TraceSink(TraceSinkConfig config) : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
  ring_.resize(config_.capacity);
  if (config_.capture_wall_time) wall_epoch_ns_ = steadyNowNs();
}

std::uint64_t TraceSink::wallNowNs() const noexcept {
  if (!config_.capture_wall_time) return 0;
  return steadyNowNs() - wall_epoch_ns_;
}

void TraceSink::recordSpanStatLocked(const TraceEvent& event) {
  const auto key = reinterpret_cast<std::uintptr_t>(event.name);
  std::size_t i = static_cast<std::size_t>(
                      (static_cast<std::uint64_t>(key) *
                       0x9e3779b97f4a7c15ULL) >> 32) &
                  (kSpanSlots - 1);
  for (std::size_t probe = 0; probe < kSpanSlots; ++probe) {
    SpanStat& slot = span_stats_[i];
    if (slot.name == nullptr) {
      slot.name = event.name;
      slot.category = event.category;
    }
    if (slot.name == event.name) {
      ++slot.count;
      slot.sum += event.dur;
      std::size_t b = 0;
      while (b < 8 && event.dur > kSpanStatBounds[b]) ++b;
      ++slot.buckets[b];
      return;
    }
    i = (i + 1) & (kSpanSlots - 1);
  }
  ++span_stat_overflow_;
}

void TraceSink::push(const TraceEvent& event) {
  void (*hook)(void*) = nullptr;
  void* ctx = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_[head_] = event;
    head_ = head_ + 1 == config_.capacity ? 0 : head_ + 1;
    ++recorded_;
    if (count_ < config_.capacity) {
      ++count_;
    } else {
      ++dropped_;
    }
    if (event.phase == Phase::Complete) recordSpanStatLocked(event);
    if (drain_hook_ != nullptr) {
      bool fire = count_ >= drain_trigger_count_;
      if (drain_interval_ > 0.0) {
        if (!drain_ts_armed_) {
          // First event after (re)arming defines the interval origin.
          next_drain_ts_ = event.ts + drain_interval_;
          drain_ts_armed_ = true;
        } else if (event.ts >= next_drain_ts_) {
          fire = true;
        }
      }
      if (fire) {
        hook = drain_hook_;
        ctx = drain_ctx_;
      }
    }
  }
  // The hook runs outside the sink lock so it may call drainInto().
  if (hook != nullptr) hook(ctx);
}

void TraceSink::record(const TraceEvent& event) { push(event); }

void TraceSink::complete(const char* category, const char* name,
                         std::uint32_t pid, std::uint32_t tid, sim::Time ts,
                         sim::Time dur, double value, std::uint64_t wall_ns) {
  TraceEvent ev;
  ev.ts = ts;
  ev.dur = dur;
  ev.category = category;
  ev.name = name;
  ev.pid = pid;
  ev.tid = tid;
  ev.phase = Phase::Complete;
  ev.value = value;
  ev.wall_ns = wall_ns;
  push(ev);
}

void TraceSink::instant(const char* category, const char* name,
                        std::uint32_t pid, std::uint32_t tid, sim::Time ts,
                        double value) {
  TraceEvent ev;
  ev.ts = ts;
  ev.category = category;
  ev.name = name;
  ev.pid = pid;
  ev.tid = tid;
  ev.phase = Phase::Instant;
  ev.value = value;
  push(ev);
}

void TraceSink::counter(const char* category, const char* name,
                        std::uint32_t pid, std::uint32_t tid, sim::Time ts,
                        double value) {
  TraceEvent ev;
  ev.ts = ts;
  ev.category = category;
  ev.name = name;
  ev.pid = pid;
  ev.tid = tid;
  ev.phase = Phase::Counter;
  ev.value = value;
  push(ev);
}

void TraceSink::flow(Phase phase, const char* category, const char* name,
                     std::uint32_t pid, std::uint32_t tid, sim::Time ts,
                     std::uint64_t journey) {
  TraceEvent ev;
  ev.ts = ts;
  ev.category = category;
  ev.name = name;
  ev.pid = pid;
  ev.tid = tid;
  ev.phase = phase;
  ev.flow = journey;
  push(ev);
}

void TraceSink::flowStart(const char* category, const char* name,
                          std::uint32_t pid, std::uint32_t tid, sim::Time ts,
                          std::uint64_t journey) {
  flow(Phase::FlowStart, category, name, pid, tid, ts, journey);
}

void TraceSink::flowStep(const char* category, const char* name,
                         std::uint32_t pid, std::uint32_t tid, sim::Time ts,
                         std::uint64_t journey) {
  flow(Phase::FlowStep, category, name, pid, tid, ts, journey);
}

void TraceSink::flowEnd(const char* category, const char* name,
                        std::uint32_t pid, std::uint32_t tid, sim::Time ts,
                        std::uint64_t journey) {
  flow(Phase::FlowEnd, category, name, pid, tid, ts, journey);
}

std::size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

std::uint64_t TraceSink::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::uint64_t TraceSink::streamed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return streamed_;
}

std::size_t TraceSink::drainInto(std::vector<TraceEvent>& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t n = count_;
  if (n == 0) return 0;
  const std::size_t start =
      count_ == config_.capacity ? head_ : (head_ + config_.capacity - count_) %
                                               config_.capacity;
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % config_.capacity]);
  }
  if (drain_interval_ > 0.0) {
    // Next time-triggered drain is measured from the last drained event.
    next_drain_ts_ = ring_[(start + n - 1) % config_.capacity].ts +
                     drain_interval_;
    drain_ts_armed_ = true;
  }
  count_ = 0;  // head_ keeps advancing; the ring is simply empty again
  streamed_ += n;
  return n;
}

std::size_t TraceSink::drainSegments(DrainSegmentFn fn, void* ctx) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t n = count_;
  if (n == 0) return 0;
  const std::size_t start =
      count_ == config_.capacity ? head_ : (head_ + config_.capacity - count_) %
                                               config_.capacity;
  // The retained window is either one contiguous run or wraps once past the
  // end of the ring; hand it over without copying.
  const std::size_t first =
      n < config_.capacity - start ? n : config_.capacity - start;
  fn(ctx, ring_.data() + start, first);
  if (first < n) fn(ctx, ring_.data(), n - first);
  if (drain_interval_ > 0.0) {
    next_drain_ts_ = ring_[(start + n - 1) % config_.capacity].ts +
                     drain_interval_;
    drain_ts_armed_ = true;
  }
  count_ = 0;
  streamed_ += n;
  return n;
}

void TraceSink::setDrainHook(void (*hook)(void*), void* ctx,
                             double occupancy_watermark,
                             sim::Time time_watermark) {
  std::lock_guard<std::mutex> lock(mutex_);
  drain_hook_ = hook;
  drain_ctx_ = ctx;
  std::size_t trigger = config_.capacity;
  if (occupancy_watermark > 0.0) {
    trigger = static_cast<std::size_t>(
        occupancy_watermark * static_cast<double>(config_.capacity));
    if (trigger < 1) trigger = 1;
    if (trigger > config_.capacity) trigger = config_.capacity;
  }
  drain_trigger_count_ = trigger;
  drain_interval_ = time_watermark > 0.0 ? time_watermark : 0.0;
  drain_ts_armed_ = false;
}

void TraceSink::clearDrainHook() {
  std::lock_guard<std::mutex> lock(mutex_);
  drain_hook_ = nullptr;
  drain_ctx_ = nullptr;
  drain_trigger_count_ = 0;
  drain_interval_ = 0.0;
  drain_ts_armed_ = false;
}

std::vector<SpanStat> TraceSink::spanStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<SpanStat>(span_stats_, span_stats_ + kSpanSlots);
}

std::uint64_t TraceSink::spanStatOverflow() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return span_stat_overflow_;
}

void TraceSink::exportMetrics(MetricsRegistry& registry) const {
  std::lock_guard<std::mutex> lock(mutex_);
  registry.addCounter("obs.trace.recorded_events", recorded_);
  registry.addCounter("obs.trace.dropped_events", dropped_);
  registry.addCounter("obs.trace.streamed_events", streamed_);
  registry.addCounter("obs.trace.span_stat_overflow", span_stat_overflow_);
  registry.setGauge("obs.trace.retained_events",
                    static_cast<double>(count_));
  registry.setGauge("obs.trace.capacity",
                    static_cast<double>(config_.capacity));
  const std::vector<double> bounds(kSpanStatBounds,
                                   kSpanStatBounds + 8);
  for (const SpanStat& s : span_stats_) {
    if (s.name == nullptr) continue;
    std::string name = "obs.span.";
    name += s.category;
    name += '.';
    name += s.name;
    registry.mergeHistogram(name, bounds, s.buckets, s.count, s.sum);
  }
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(count_);
  // Oldest event sits at head_ once the ring has wrapped, else at 0.
  const std::size_t start =
      count_ == config_.capacity ? head_ : (head_ + config_.capacity - count_) %
                                               config_.capacity;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % config_.capacity]);
  }
  return out;
}

void TraceSink::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  head_ = 0;
  count_ = 0;
}

void TraceSink::setProcessName(std::uint32_t pid, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  process_names_[pid] = std::move(name);
}

void TraceSink::setThreadName(std::uint32_t pid, std::uint32_t tid,
                              std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  thread_names_[{pid, tid}] = std::move(name);
}

std::map<std::uint32_t, std::string> TraceSink::processNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return process_names_;
}

std::map<std::pair<std::uint32_t, std::uint32_t>, std::string>
TraceSink::threadNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return thread_names_;
}

namespace detail {
std::atomic<TraceSink*> g_trace_sink{nullptr};
thread_local TraceSink* t_trace_sink_override = nullptr;
}  // namespace detail

void installTraceSink(TraceSink* sink) noexcept {
  detail::g_trace_sink.store(sink, std::memory_order_release);
}

TraceSink* installThreadTraceSink(TraceSink* sink) noexcept {
  return std::exchange(detail::t_trace_sink_override, sink);
}

std::uint64_t parseJourneySampleStride(const char* text) noexcept {
  if (text == nullptr || *text == '\0') return 0;
  // Require a plain positive decimal integer. strtoull would silently
  // accept leading whitespace, a sign (wrapping "-3" to a huge stride), and
  // hex prefixes -- reject all of those up front.
  if (*text < '0' || *text > '9') return 0;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return 0;
  if (errno == ERANGE) return 0;
  if (parsed == 0) return 0;
  return static_cast<std::uint64_t>(parsed);
}

namespace {

std::uint64_t journeyStrideFromEnv() noexcept {
  const char* const value = std::getenv("IOBTS_TRACE_JOURNEY_SAMPLE");
  if (value == nullptr || *value == '\0') return 1;
  const std::uint64_t parsed = parseJourneySampleStride(value);
  if (parsed == 0) {
    IOBTS_LOG_WARN() << "IOBTS_TRACE_JOURNEY_SAMPLE='" << value
                     << "' is not a positive integer; recording every "
                        "journey (stride 1)";
    return 1;
  }
  return parsed;
}

/// 0 = "use the environment value"; set via setJourneySampleStride().
std::atomic<std::uint64_t> g_journey_stride_override{0};

}  // namespace

std::uint64_t journeySampleStride() noexcept {
  const std::uint64_t forced =
      g_journey_stride_override.load(std::memory_order_relaxed);
  if (forced != 0) return forced;
  static const std::uint64_t env_stride = journeyStrideFromEnv();
  return env_stride;
}

void setJourneySampleStride(std::uint64_t stride) noexcept {
  g_journey_stride_override.store(stride, std::memory_order_relaxed);
}

std::uint64_t sampledJourney(std::uint64_t journey) noexcept {
  const std::uint64_t stride = journeySampleStride();
  if (stride <= 1) return journey;
  return journey % stride == 0 ? journey : 0;
}

}  // namespace iobts::obs
