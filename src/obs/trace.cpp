#include "obs/trace.hpp"

#include <chrono>

namespace iobts::obs {

namespace {

std::uint64_t steadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TraceSink::TraceSink(TraceSinkConfig config) : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
  ring_.resize(config_.capacity);
  if (config_.capture_wall_time) wall_epoch_ns_ = steadyNowNs();
}

std::uint64_t TraceSink::wallNowNs() const noexcept {
  if (!config_.capture_wall_time) return 0;
  return steadyNowNs() - wall_epoch_ns_;
}

void TraceSink::push(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_[head_] = event;
  head_ = head_ + 1 == config_.capacity ? 0 : head_ + 1;
  ++recorded_;
  if (count_ < config_.capacity) {
    ++count_;
  } else {
    ++dropped_;
  }
}

void TraceSink::complete(const char* category, const char* name,
                         std::uint32_t pid, std::uint32_t tid, sim::Time ts,
                         sim::Time dur, double value, std::uint64_t wall_ns) {
  TraceEvent ev;
  ev.ts = ts;
  ev.dur = dur;
  ev.category = category;
  ev.name = name;
  ev.pid = pid;
  ev.tid = tid;
  ev.phase = Phase::Complete;
  ev.value = value;
  ev.wall_ns = wall_ns;
  push(ev);
}

void TraceSink::instant(const char* category, const char* name,
                        std::uint32_t pid, std::uint32_t tid, sim::Time ts,
                        double value) {
  TraceEvent ev;
  ev.ts = ts;
  ev.category = category;
  ev.name = name;
  ev.pid = pid;
  ev.tid = tid;
  ev.phase = Phase::Instant;
  ev.value = value;
  push(ev);
}

void TraceSink::counter(const char* category, const char* name,
                        std::uint32_t pid, std::uint32_t tid, sim::Time ts,
                        double value) {
  TraceEvent ev;
  ev.ts = ts;
  ev.category = category;
  ev.name = name;
  ev.pid = pid;
  ev.tid = tid;
  ev.phase = Phase::Counter;
  ev.value = value;
  push(ev);
}

std::size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

std::uint64_t TraceSink::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(count_);
  // Oldest event sits at head_ once the ring has wrapped, else at 0.
  const std::size_t start =
      count_ == config_.capacity ? head_ : (head_ + config_.capacity - count_) %
                                               config_.capacity;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % config_.capacity]);
  }
  return out;
}

void TraceSink::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  head_ = 0;
  count_ = 0;
}

void TraceSink::setProcessName(std::uint32_t pid, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  process_names_[pid] = std::move(name);
}

void TraceSink::setThreadName(std::uint32_t pid, std::uint32_t tid,
                              std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  thread_names_[{pid, tid}] = std::move(name);
}

std::map<std::uint32_t, std::string> TraceSink::processNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return process_names_;
}

std::map<std::pair<std::uint32_t, std::uint32_t>, std::string>
TraceSink::threadNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return thread_names_;
}

namespace detail {
std::atomic<TraceSink*> g_trace_sink{nullptr};
}  // namespace detail

void installTraceSink(TraceSink* sink) noexcept {
  detail::g_trace_sink.store(sink, std::memory_order_release);
}

}  // namespace iobts::obs
