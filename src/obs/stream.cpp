#include "obs/stream.hpp"

#include <utility>

#include "obs/export.hpp"

namespace iobts::obs {

TraceStreamer::TraceStreamer(TraceSink& sink, const std::string& path,
                             TraceStreamerConfig config)
    : sink_(sink), file_(path, std::ios::binary), file_mode_(true) {
  file_ok_ = static_cast<bool>(file_);
  attach(config);
}

TraceStreamer::TraceStreamer(TraceSink& sink, Callback callback,
                             TraceStreamerConfig config)
    : sink_(sink), callback_(std::move(callback)) {
  attach(config);
}

TraceStreamer::~TraceStreamer() { close(); }

void TraceStreamer::attach(const TraceStreamerConfig& config) {
  sink_.setDrainHook(&TraceStreamer::drainThunk, this,
                     config.occupancy_watermark, config.time_watermark);
}

void TraceStreamer::drainThunk(void* ctx) {
  static_cast<TraceStreamer*>(ctx)->drain();
}

void TraceStreamer::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  batch_.clear();
  if (sink_.drainInto(batch_) == 0) return;
  deliverLocked(batch_);
}

void TraceStreamer::deliverLocked(const std::vector<TraceEvent>& batch) {
  ++batches_;
  events_ += batch.size();
  if (!file_mode_) {
    if (callback_) callback_(batch);
    return;
  }
  if (!file_ok_) return;
  if (!header_written_) {
    file_ << "{\"traceEvents\":[\n";
    header_written_ = true;
  }
  for (const TraceEvent& ev : batch) {
    if (any_event_written_) file_ << ",\n";
    file_ << traceEventJson(ev).dump();
    any_event_written_ = true;
  }
  if (!file_) file_ok_ = false;
}

bool TraceStreamer::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return !file_mode_ || file_ok_;
  sink_.clearDrainHook();
  batch_.clear();
  if (sink_.drainInto(batch_) > 0) deliverLocked(batch_);
  if (file_mode_ && file_ok_) {
    if (!header_written_) {
      file_ << "{\"traceEvents\":[\n";
      header_written_ = true;
    }
    // Metadata records go last: every track name registered during the run
    // is known by now, and Perfetto applies them regardless of position.
    for (const Json& meta : traceMetadataEvents(sink_)) {
      if (any_event_written_) file_ << ",\n";
      file_ << meta.dump();
      any_event_written_ = true;
    }
    const JsonObject other{
        {"recorded", Json(sink_.recorded())},
        {"dropped", Json(sink_.dropped())},
        {"streamed", Json(sink_.streamed())},
        {"clock", Json(kTraceClockNote)},
    };
    file_ << "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":"
          << Json(other).dump() << "}\n";
    file_.close();
    if (!file_) file_ok_ = false;
  }
  closed_ = true;
  return !file_mode_ || file_ok_;
}

bool TraceStreamer::good() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !file_mode_ || file_ok_;
}

std::uint64_t TraceStreamer::batches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batches_;
}

std::uint64_t TraceStreamer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

}  // namespace iobts::obs
