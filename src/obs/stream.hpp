// Streaming trace export.
//
// The TraceSink ring retains only the most recent `capacity` events; long
// cluster runs used to lose their early history to overwrite-oldest. A
// TraceStreamer attaches to a sink and incrementally *drains* the ring --
// either into a Chrome-trace JSON file written as events arrive, or into a
// user callback -- so every recorded event reaches the export exactly once
// regardless of run length. Drains happen:
//
//   * when ring occupancy reaches `occupancy_watermark * capacity` events
//     (default 0.5; always at the latest when the ring is full, so an
//     attached streamer never drops events), and/or
//   * when virtual time has advanced `time_watermark` seconds past the end
//     of the previous drain (0 = occupancy only). The time trigger fires on
//     the first event recorded at or past the deadline -- it injects no
//     simulation events of its own, so attaching a streamer never perturbs
//     the event kernel.
//
// Determinism: events are serialized by the same obs::traceEventJson used
// for one-shot exports, timestamps are virtual, and drain points depend
// only on recorded events -- so with wall capture off, two identical runs
// stream byte-identical files. The file is finalized by close() (or the
// destructor): remaining events are drained, metadata records appended,
// and the document closed with the recorded/dropped/streamed totals.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace iobts::obs {

struct TraceStreamerConfig {
  /// Drain when the ring holds this fraction of its capacity (clamped to
  /// [1 event, capacity]; <= 0 means "only when full").
  double occupancy_watermark = 0.5;
  /// Also drain when an event is recorded at least this many virtual
  /// seconds past the previous drain (0 = disabled).
  sim::Time time_watermark = 0.0;
};

/// Incremental exporter bound to one TraceSink. Construction installs the
/// sink's drain hook; close()/destruction uninstalls it. One streamer per
/// sink at a time.
class TraceStreamer {
 public:
  using Callback = std::function<void(const std::vector<TraceEvent>&)>;

  /// File mode: stream a Chrome trace document to `path`. Check good()
  /// after construction for open failures.
  TraceStreamer(TraceSink& sink, const std::string& path,
                TraceStreamerConfig config = {});
  /// Callback mode: each drain hands the batch (oldest first) to
  /// `callback`.
  TraceStreamer(TraceSink& sink, Callback callback,
                TraceStreamerConfig config = {});
  ~TraceStreamer();

  TraceStreamer(const TraceStreamer&) = delete;
  TraceStreamer& operator=(const TraceStreamer&) = delete;

  /// Drain whatever the ring currently holds (also called by the sink's
  /// watermark trigger). Safe from any thread.
  void drain();

  /// Final drain + document footer + hook removal. Idempotent. Returns
  /// false if any file write failed (callback mode always returns true).
  bool close();

  bool good() const;
  /// Drain batches delivered so far.
  std::uint64_t batches() const;
  /// Events delivered so far.
  std::uint64_t events() const;

 private:
  static void drainThunk(void* ctx);
  void attach(const TraceStreamerConfig& config);
  void deliverLocked(const std::vector<TraceEvent>& batch);

  TraceSink& sink_;
  mutable std::mutex mutex_;
  std::ofstream file_;
  bool file_mode_ = false;
  bool file_ok_ = true;
  bool header_written_ = false;
  bool any_event_written_ = false;
  bool closed_ = false;
  Callback callback_;
  std::vector<TraceEvent> batch_;  // reused across drains
  std::uint64_t batches_ = 0;
  std::uint64_t events_ = 0;
};

}  // namespace iobts::obs
