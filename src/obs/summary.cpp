#include "obs/summary.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "ckpt/capture.hpp"
#include "cluster/fleet.hpp"
#include "obs/metrics.hpp"
#include "pfs/shared_link.hpp"
#include "scenario/instance.hpp"
#include "scenario/scenario.hpp"
#include "tmio/tracer.hpp"

namespace iobts::obs {
namespace {

/// Canonical key=value emitter (the checkpoint plane's discipline: doubles
/// as hexfloats, digests as zero-padded hex).
class SectionBuilder {
 public:
  void kv(const std::string& key, std::uint64_t value) {
    text_ += key;
    text_ += '=';
    text_ += std::to_string(value);
    text_ += '\n';
  }
  void kv(const std::string& key, int value) {
    text_ += key;
    text_ += '=';
    text_ += std::to_string(value);
    text_ += '\n';
  }
  void kv(const std::string& key, bool value) {
    text_ += key;
    text_ += value ? "=1\n" : "=0\n";
  }
  void kv(const std::string& key, double value) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", value);
    text_ += key;
    text_ += '=';
    text_ += buf;
    text_ += '\n';
  }
  void hex(const std::string& key, std::uint64_t value) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, value);
    text_ += key;
    text_ += '=';
    text_ += buf;
    text_ += '\n';
  }
  void raw(const std::string& blob) { text_ += blob; }

  std::string take() { return std::move(text_); }

 private:
  std::string text_;
};

/// FNV-1a over raw 64-bit words -- full tables are always digested even
/// when only a prefix is rendered, so truncation cannot hide a divergence.
class WordDigest {
 public:
  void mix(std::uint64_t bits) noexcept {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (bits >> (8 * i)) & 0xffULL;
      h_ *= 0x100000001b3ULL;
    }
  }
  void mix(double value) noexcept {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  }
  std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

constexpr pfs::Channel kChannelList[] = {pfs::Channel::Read,
                                         pfs::Channel::Write};
constexpr const char* kChannelName[] = {"read", "write"};

std::string hexfloat(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", value);
  return std::string(buf);
}

void emitTimeline(SectionBuilder& b, const std::string& key,
                  const StepSeries& series, double t0, double t1,
                  std::size_t points) {
  b.kv(key + ".steps", static_cast<std::uint64_t>(series.size()));
  b.kv(key + ".max", series.maxValue());
  if (series.empty() || points == 0 || t1 <= t0) return;
  for (const auto& [t, v] : series.resample(t0, t1, points)) {
    b.raw(key + ".at=" + hexfloat(t) + " " + hexfloat(v) + "\n");
  }
}

ckpt::Section summaryMeta(scenario::Instance& instance,
                          const SummaryOptions& opt) {
  SectionBuilder b;
  b.raw("scenario=" + opt.scenario_name + "\n");
  b.hex("scenario_digest",
        opt.scenario_text.empty() ? 0 : ckpt::fnv1a(opt.scenario_text));
  b.hex("run_digest", ckpt::runDigest(instance));
  b.kv("elapsed", instance.elapsed());
  b.kv("worlds", static_cast<std::uint64_t>(instance.worldCount()));
  return {"meta", b.take()};
}

ckpt::Section summaryPhases(scenario::Instance& instance, std::size_t index,
                            const SummaryOptions& opt) {
  const tmio::Tracer& tracer = instance.tracer(index);
  SectionBuilder b;
  b.raw("world=" + instance.spec().worlds[index].name + "\n");
  const auto& phases = tracer.phaseRecords();
  b.kv("records", static_cast<std::uint64_t>(phases.size()));
  WordDigest rows;
  std::size_t rendered = 0;
  for (const tmio::PhaseRecord& p : phases) {
    rows.mix(static_cast<std::uint64_t>(p.rank));
    rows.mix(static_cast<std::uint64_t>(p.phase));
    rows.mix(static_cast<std::uint64_t>(p.channel));
    rows.mix(p.ts);
    rows.mix(p.te);
    rows.mix(static_cast<std::uint64_t>(p.bytes));
    rows.mix(static_cast<std::uint64_t>(p.requests));
    rows.mix(p.required);
    rows.mix(p.applied_limit.value_or(-1.0));
    if (rendered >= opt.max_phase_rows) continue;
    ++rendered;
    b.raw("row=rank:" + std::to_string(p.rank) +
          " phase:" + std::to_string(p.phase) + " ch:" +
          kChannelName[static_cast<int>(p.channel)] + " ts:" + hexfloat(p.ts) +
          " te:" + hexfloat(p.te) +
          " bytes:" + std::to_string(static_cast<std::uint64_t>(p.bytes)) +
          " requests:" + std::to_string(p.requests) +
          " required:" + hexfloat(p.required) + " limit:" +
          (p.applied_limit ? hexfloat(*p.applied_limit) : "none") + "\n");
  }
  if (rendered < phases.size()) {
    b.kv("rows_elided", static_cast<std::uint64_t>(phases.size() - rendered));
  }
  b.hex("rows_digest", rows.value());
  // Application-level view (Eq. 3): the step count and maximum per channel,
  // plus the overall minimal zero-waiting bandwidth (Sec. IV-C).
  for (int c = 0; c < 2; ++c) {
    const StepSeries breq = tracer.appRequiredSeries(kChannelList[c]);
    const std::string key = std::string("breq.") + kChannelName[c];
    b.kv(key + ".steps", static_cast<std::uint64_t>(breq.size()));
    b.kv(key + ".max", breq.maxValue());
  }
  b.kv("min_required_bandwidth", tracer.minimalRequiredBandwidth());
  return {"phases." + std::to_string(index), b.take()};
}

ckpt::Section summaryStalls(scenario::Instance& instance, std::size_t index) {
  const tmio::Tracer& tracer = instance.tracer(index);
  mpisim::World& world = instance.world(index);
  tmio::AsyncTimeSplit total;
  for (int r = 0; r < world.config().ranks; ++r) {
    const tmio::AsyncTimeSplit& s = tracer.rankSplit(r);
    total.write_exploit += s.write_exploit;
    total.read_exploit += s.read_exploit;
    total.write_lost += s.write_lost;
    total.read_lost += s.read_lost;
    total.sync_write += s.sync_write;
    total.sync_read += s.sync_read;
  }
  SectionBuilder b;
  b.raw("world=" + instance.spec().worlds[index].name + "\n");
  b.kv("ranks", world.config().ranks);
  b.kv("write_exploit", total.write_exploit);
  b.kv("read_exploit", total.read_exploit);
  b.kv("write_lost", total.write_lost);
  b.kv("read_lost", total.read_lost);
  b.kv("sync_write", total.sync_write);
  b.kv("sync_read", total.sync_read);
  // The stall attribution headline: virtual rank-seconds of I/O hidden
  // behind compute/comm vs. visible to the application (Figs. 7/11).
  b.kv("compute_overlapped", total.write_exploit + total.read_exploit);
  b.kv("io_blocked", total.write_lost + total.read_lost + total.sync_write +
                         total.sync_read);
  return {"stalls." + std::to_string(index), b.take()};
}

void emitLinkChannels(SectionBuilder& b, pfs::SharedLink& link, double t0,
                      double t1, std::size_t points) {
  for (int c = 0; c < 2; ++c) {
    const pfs::Channel channel = kChannelList[c];
    const std::string p = kChannelName[c];
    b.kv(p + ".capacity", link.capacity(channel));
    b.kv(p + ".effective_capacity", link.effectiveCapacity(channel));
    b.kv(p + ".bytes_moved",
         static_cast<std::uint64_t>(link.bytesMoved(channel)));
    b.kv(p + ".active_transfers",
         static_cast<std::uint64_t>(link.activeTransfers(channel)));
    b.kv(p + ".contended", link.contended(channel));
    const pfs::SharedLink::ResolveStats rs = link.resolveStats(channel);
    b.kv(p + ".resolves_executed", rs.executed);
    b.kv(p + ".resolves_lazy_skipped", rs.lazy_skipped);
    b.kv(p + ".full_solves", rs.full_solves);
    b.kv(p + ".faulted_transfers", rs.faulted_transfers);
    b.kv(p + ".capacity_edges", rs.capacity_edges);
    emitTimeline(b, p + ".utilization", link.totalRateSeries(channel), t0, t1,
                 points);
    emitTimeline(b, p + ".backlog", link.activeTransferSeries(channel), t0,
                 t1, points);
  }
}

ckpt::Section summaryLink(scenario::Instance& instance,
                          const SummaryOptions& opt) {
  SectionBuilder b;
  emitLinkChannels(b, instance.link(), 0.0, instance.elapsed(),
                   opt.timeline_points);
  b.kv("streams", static_cast<std::uint64_t>(instance.link().streamCount()));
  return {"link", b.take()};
}

ckpt::Section summaryMetrics(scenario::Instance& instance) {
  // Same registry population as the end-of-run state capture: sim + link +
  // worlds. Trace sinks are deliberately not exported here, so the summary
  // is byte-identical whether the run traced to JSON, to the binary
  // recorder, or not at all.
  MetricsRegistry registry;
  instance.sim().exportMetrics(registry);
  instance.link().exportMetrics(registry);
  for (std::size_t w = 0; w < instance.worldCount(); ++w) {
    instance.world(w).exportMetrics(registry);
  }
  SectionBuilder b;
  b.raw(registry.dumpText());
  return {"metrics", b.take()};
}

}  // namespace

std::string RunSummary::render() const { return ckpt::joinSections(sections); }

std::uint64_t RunSummary::digest() const { return ckpt::fnv1a(render()); }

RunSummary summarizeInstance(scenario::Instance& instance,
                             const SummaryOptions& options) {
  RunSummary summary;
  summary.sections.reserve(3 + 2 * instance.worldCount());
  summary.sections.push_back(summaryMeta(instance, options));
  for (std::size_t w = 0; w < instance.worldCount(); ++w) {
    summary.sections.push_back(summaryPhases(instance, w, options));
    summary.sections.push_back(summaryStalls(instance, w));
  }
  summary.sections.push_back(summaryLink(instance, options));
  summary.sections.push_back(summaryMetrics(instance));
  return summary;
}

RunSummary summarizeFleet(cluster::Fleet& fleet,
                          const SummaryOptions& options) {
  RunSummary summary;
  {
    SectionBuilder b;
    b.raw("scenario=" + options.scenario_name + "\n");
    b.hex("scenario_digest", options.scenario_text.empty()
                                 ? 0
                                 : ckpt::fnv1a(options.scenario_text));
    b.kv("clusters", static_cast<std::uint64_t>(fleet.clusterCount()));
    const auto log = fleet.canonicalLog();
    b.kv("completions", static_cast<std::uint64_t>(log.size()));
    WordDigest rows;
    std::size_t rendered = 0;
    double last_reported = 0.0;
    for (const cluster::Fleet::CompletionRecord& r : log) {
      rows.mix(static_cast<std::uint64_t>(r.cluster));
      rows.mix(static_cast<std::uint64_t>(r.job));
      rows.mix(r.reported_at);
      rows.mix(r.end);
      rows.mix(static_cast<std::uint64_t>(r.failed));
      rows.mix(r.seq);
      last_reported = r.reported_at;
      if (rendered >= options.max_phase_rows) continue;
      ++rendered;
      b.raw("row=cluster:" + std::to_string(r.cluster) +
            " job:" + std::to_string(r.job) +
            " reported:" + hexfloat(r.reported_at) +
            " end:" + hexfloat(r.end) + " failed:" + (r.failed ? "1" : "0") +
            " seq:" + std::to_string(r.seq) + "\n");
    }
    if (rendered < log.size()) {
      b.kv("rows_elided",
           static_cast<std::uint64_t>(log.size() - rendered));
    }
    b.hex("rows_digest", rows.value());
    b.kv("last_reported", last_reported);
    summary.sections.push_back({"fleet.meta", b.take()});
  }
  for (std::uint32_t k = 0; k < fleet.clusterCount(); ++k) {
    cluster::Cluster& c = fleet.cluster(k);
    const std::string prefix = "shard" + std::to_string(k) + ".";
    {
      SectionBuilder b;
      b.kv("jobs", static_cast<std::uint64_t>(c.jobCount()));
      WordDigest rows;
      for (cluster::JobId j = 0; j < c.jobCount(); ++j) {
        const cluster::JobResult& r = c.result(j);
        rows.mix(r.submit);
        rows.mix(r.start);
        rows.mix(r.end);
        rows.mix(static_cast<std::uint64_t>(r.failed));
        rows.mix(static_cast<std::uint64_t>(r.resubmits));
        rows.mix(r.io_retries);
        b.raw("row=job:" + std::to_string(j) + " start:" + hexfloat(r.start) +
              " end:" + hexfloat(r.end) + " failed:" + (r.failed ? "1" : "0") +
              " resubmits:" + std::to_string(r.resubmits) +
              " io_retries:" + std::to_string(r.io_retries) + "\n");
      }
      b.hex("rows_digest", rows.value());
      summary.sections.push_back({prefix + "jobs", b.take()});
    }
    {
      SectionBuilder b;
      // The fleet's summary keeps timelines coarse (maxima only): campaign
      // summaries aggregate hundreds of shards, and the per-shard job rows
      // already pin the schedule byte-exactly.
      emitLinkChannels(b, c.link(), 0.0, 0.0, 0);
      summary.sections.push_back({prefix + "link", b.take()});
    }
  }
  return summary;
}

bool writeRunSummary(const RunSummary& summary, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << summary.render();
    out.flush();
    if (!out) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace iobts::obs
