#include "obs/profile.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "obs/export.hpp"

namespace iobts::obs {
namespace {

/// printf into a growing string (all report formatting funnels through
/// here so precision is uniform and golden-pinnable).
void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n),
                                      sizeof(buf) - 1));
}

void appendDuration(std::string& out, double seconds) {
  if (seconds >= 1.0) {
    appendf(out, "%10.3f s ", seconds);
  } else if (seconds >= 1e-3) {
    appendf(out, "%10.3f ms", seconds * 1e3);
  } else {
    appendf(out, "%10.3f us", seconds * 1e6);
  }
}

bool startsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string journeyIdString(std::uint64_t journey) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(journey));
  return std::string(buf);
}

}  // namespace

std::string profileSummaryText(const BinaryTrace& trace,
                               std::size_t top_spans) {
  struct SpanAgg {
    std::uint64_t count = 0;
    double total = 0.0;  // seconds
    double max = 0.0;
    double wall_ns = 0.0;
  };
  std::map<std::string, SpanAgg> spans;
  std::map<std::string, std::uint64_t> instants;
  double t_min = 0.0, t_max = 0.0;
  bool saw_span = false;
  for (const BinEvent& e : trace.events) {
    const std::string key =
        trace.strings[e.category] + "/" + trace.strings[e.name];
    if (e.phase == Phase::Complete) {
      SpanAgg& agg = spans[key];
      ++agg.count;
      agg.total += e.dur;
      agg.max = std::max(agg.max, e.dur);
      agg.wall_ns += static_cast<double>(e.wall_ns);
      if (!saw_span) {
        t_min = e.ts;
        t_max = e.ts + e.dur;
        saw_span = true;
      } else {
        t_min = std::min(t_min, e.ts);
        t_max = std::max(t_max, e.ts + e.dur);
      }
    } else if (e.phase == Phase::Instant) {
      ++instants[key];
    }
  }

  std::string out;
  appendf(out, "%llu events (recorded %llu, dropped %llu, streamed %llu), "
               "%llu interned strings",
          static_cast<unsigned long long>(trace.events.size()),
          static_cast<unsigned long long>(trace.totals.recorded),
          static_cast<unsigned long long>(trace.totals.dropped),
          static_cast<unsigned long long>(trace.totals.streamed),
          static_cast<unsigned long long>(trace.strings.size()));
  if (saw_span) {
    appendf(out, ", virtual span [%.3f s, %.3f s]", t_min, t_max);
  }
  // Single-shard traces keep the exact v1 header: golden pins depend on it.
  if (trace.shard_count > 1) {
    appendf(out, ", %u shards merged",
            static_cast<unsigned>(trace.shard_count));
  }
  out += "\n\n";

  std::vector<std::pair<std::string, SpanAgg>> ranked(spans.begin(),
                                                      spans.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.total > b.second.total;
                   });
  out += "Top spans by inclusive virtual time:\n";
  appendf(out, "  %-28s %10s %12s %12s %12s\n", "span", "count", "total",
          "mean", "max");
  for (std::size_t i = 0; i < ranked.size() && i < top_spans; ++i) {
    const auto& [name, agg] = ranked[i];
    appendf(out, "  %-28s %10llu ", name.c_str(),
            static_cast<unsigned long long>(agg.count));
    appendDuration(out, agg.total);
    out += ' ';
    appendDuration(out, agg.total / static_cast<double>(agg.count));
    out += ' ';
    appendDuration(out, agg.max);
    if (agg.wall_ns > 0.0) {
      appendf(out, "  (wall %.3f ms)", agg.wall_ns / 1e6);
    }
    out += '\n';
  }
  if (ranked.size() > top_spans) {
    appendf(out, "  ... %llu more\n",
            static_cast<unsigned long long>(ranked.size() - top_spans));
  }

  if (!instants.empty()) {
    out += "\nInstant events:\n";
    for (const auto& [name, count] : instants) {
      appendf(out, "  %-28s %10llu\n", name.c_str(),
              static_cast<unsigned long long>(count));
    }
  }
  return out;
}

std::string criticalPathText(const BinaryTrace& trace,
                             std::size_t top_journeys) {
  struct Span {
    double ts = 0.0;
    double dur = 0.0;
    std::uint32_t name = 0;
  };
  struct Journey {
    double t_min = 0.0, t_max = 0.0;
    bool seen = false;
    double queue = 0.0, pace = 0.0, link = 0.0, fault = 0.0, total = 0.0;
    std::uint64_t subrequests = 0;
    std::uint64_t flow_events = 0;
    bool failed = false;
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<Span>> tracks;
  std::map<std::uint64_t,
           std::vector<std::pair<std::pair<std::uint32_t, std::uint32_t>,
                                 double>>>
      flows;
  for (const BinEvent& e : trace.events) {
    const std::pair<std::uint32_t, std::uint32_t> track{e.pid, e.tid};
    if (e.phase == Phase::Complete) {
      tracks[track].push_back(Span{e.ts, e.dur, e.name});
    } else if (e.phase == Phase::FlowStart || e.phase == Phase::FlowStep ||
               e.phase == Phase::FlowEnd) {
      flows[e.flow].push_back({track, e.ts});
    }
  }
  std::string out;
  if (flows.empty()) {
    out += "no flow events -- this trace predates request journeys (re-run "
           "the instrumented workload)\n";
    return out;
  }

  std::vector<std::pair<std::uint64_t, Journey>> journeys;
  for (const auto& [id, chain] : flows) {
    Journey j;
    j.flow_events = chain.size();
    std::vector<const Span*> bound;
    for (const auto& [track, ts] : chain) {
      if (!j.seen) {
        j.t_min = j.t_max = ts;
        j.seen = true;
      } else {
        j.t_min = std::min(j.t_min, ts);
        j.t_max = std::max(j.t_max, ts);
      }
      const auto it = tracks.find(track);
      if (it == tracks.end()) continue;
      for (const Span& s : it->second) {
        if (ts < s.ts || ts > s.ts + s.dur) continue;
        if (std::find(bound.begin(), bound.end(), &s) != bound.end()) {
          continue;
        }
        bound.push_back(&s);
      }
    }
    for (const Span* s : bound) {
      j.t_max = std::max(j.t_max, s->ts + s->dur);
      const std::string& name = trace.strings[s->name];
      if (name == "adio.queue") {
        j.queue += s->dur;
      } else if (name == "adio.pace") {
        j.pace += s->dur;
      } else if (name == "transfer.read" || name == "transfer.write") {
        j.link += s->dur;
      } else if (name == "transfer.faulted" || name == "adio.backoff") {
        j.fault += s->dur;
      } else if (name == "adio.subreq") {
        ++j.subrequests;
      } else if (startsWith(name, "adio.request.") ||
                 startsWith(name, "rtio.op")) {
        j.total += s->dur;
        j.failed |=
            name == "adio.request.failed" || name == "rtio.op.failed";
      }
    }
    if (j.total == 0.0) j.total = j.t_max - j.t_min;
    journeys.emplace_back(id, j);
  }

  std::stable_sort(journeys.begin(), journeys.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.total > b.second.total;
                   });

  appendf(out, "%llu journeys; critical-path split per journey "
               "(queue | pace | link | fault):\n",
          static_cast<unsigned long long>(journeys.size()));
  appendf(out, "  %-20s %12s %12s %12s %12s %12s %7s\n", "journey", "total",
          "queue", "pace", "link", "fault", "subreq");
  double agg_total = 0, agg_queue = 0, agg_pace = 0, agg_link = 0,
         agg_fault = 0;
  for (std::size_t i = 0; i < journeys.size(); ++i) {
    const auto& [id, j] = journeys[i];
    agg_total += j.total;
    agg_queue += j.queue;
    agg_pace += j.pace;
    agg_link += j.link;
    agg_fault += j.fault;
    if (i >= top_journeys) continue;
    const std::string label = journeyIdString(id) + (j.failed ? " !" : "");
    appendf(out, "  %-20s ", label.c_str());
    appendDuration(out, j.total);
    out += ' ';
    appendDuration(out, j.queue);
    out += ' ';
    appendDuration(out, j.pace);
    out += ' ';
    appendDuration(out, j.link);
    out += ' ';
    appendDuration(out, j.fault);
    appendf(out, " %7llu\n", static_cast<unsigned long long>(j.subrequests));
  }
  if (journeys.size() > top_journeys) {
    appendf(out, "  ... %llu more\n",
            static_cast<unsigned long long>(journeys.size() - top_journeys));
  }
  appendf(out, "\n  %-20s ", "all journeys");
  appendDuration(out, agg_total);
  out += ' ';
  appendDuration(out, agg_queue);
  out += ' ';
  appendDuration(out, agg_pace);
  out += ' ';
  appendDuration(out, agg_link);
  out += ' ';
  appendDuration(out, agg_fault);
  out += "\n  (pace = bandwidth limitation at work; link = fair-share "
         "transfer time; fault = faulted settles + retry backoffs)\n";
  return out;
}

std::string linkTimelineCsv(const BinaryTrace& trace, std::size_t bins) {
  struct Transfer {
    double ts = 0.0;
    double dur = 0.0;
    double bytes = 0.0;
    int channel = 0;  // 0 read, 1 write, 2 faulted
  };
  static constexpr const char* kChannelName[] = {"read", "write", "faulted"};
  std::vector<Transfer> transfers;
  double t_min = 0.0, t_max = 0.0;
  bool seen = false;
  for (const BinEvent& e : trace.events) {
    if (e.phase != Phase::Complete) continue;
    const std::string& name = trace.strings[e.name];
    int channel;
    if (name == "transfer.read") {
      channel = 0;
    } else if (name == "transfer.write") {
      channel = 1;
    } else if (name == "transfer.faulted") {
      channel = 2;
    } else {
      continue;
    }
    transfers.push_back(Transfer{e.ts, e.dur, e.value, channel});
    if (!seen) {
      t_min = e.ts;
      t_max = e.ts + e.dur;
      seen = true;
    } else {
      t_min = std::min(t_min, e.ts);
      t_max = std::max(t_max, e.ts + e.dur);
    }
  }
  std::string out = "channel,t_seconds,bytes_per_second\n";
  if (!seen || bins == 0 || t_max <= t_min) return out;
  // Each transfer contributes its mean rate (bytes / span length) to every
  // bin it overlaps, weighted by the overlap fraction of the bin -- the
  // binned twin of the link's allocated-rate step series.
  const double width = (t_max - t_min) / static_cast<double>(bins);
  std::vector<std::vector<double>> rate(3,
                                        std::vector<double>(bins, 0.0));
  for (const Transfer& t : transfers) {
    const double rate_bps = t.dur > 0.0 ? t.bytes / t.dur : 0.0;
    if (rate_bps <= 0.0) continue;
    const double start = t.ts;
    const double end = t.ts + t.dur;
    for (std::size_t b = 0; b < bins; ++b) {
      const double bin_lo = t_min + width * static_cast<double>(b);
      const double bin_hi = bin_lo + width;
      const double lo = std::max(start, bin_lo);
      const double hi = std::min(end, bin_hi);
      if (hi <= lo) continue;
      rate[static_cast<std::size_t>(t.channel)][b] +=
          rate_bps * (hi - lo) / width;
    }
  }
  for (int c = 0; c < 3; ++c) {
    bool any = false;
    for (const double r : rate[static_cast<std::size_t>(c)]) {
      if (r != 0.0) any = true;
    }
    if (!any) continue;
    for (std::size_t b = 0; b < bins; ++b) {
      appendf(out, "%s,%.9f,%.6f\n", kChannelName[c],
              t_min + width * static_cast<double>(b),
              rate[static_cast<std::size_t>(c)][b]);
    }
  }
  return out;
}

namespace {

/// Collect the (t, B_req) counter series per channel name emitted by the
/// tmio bridge ("tmio.app.breq.read" / ".write"), in recording order.
std::map<std::string, std::vector<std::pair<double, double>>> breqSeries(
    const BinaryTrace& trace) {
  std::map<std::string, std::vector<std::pair<double, double>>> series;
  for (const BinEvent& e : trace.events) {
    if (e.phase != Phase::Counter) continue;
    const std::string& name = trace.strings[e.name];
    if (!startsWith(name, "tmio.app.breq.")) continue;
    series[name.substr(std::strlen("tmio.app.breq."))].push_back(
        {e.ts, e.value});
  }
  return series;
}

}  // namespace

std::string breqTableText(const BinaryTrace& trace) {
  const auto series = breqSeries(trace);
  std::string out;
  out += "Application-level required bandwidth B_req (Eq. 3 step series):\n";
  if (series.empty()) {
    out += "  no tmio.app.breq.* counters -- the run predates the tmio "
           "bridge annotations\n";
    return out;
  }
  for (const auto& [channel, points] : series) {
    double max_breq = 0.0;
    for (const auto& [t, v] : points) max_breq = std::max(max_breq, v);
    appendf(out, "\n  channel %s: %llu steps, minimal required bandwidth "
                 "%.3f MB/s\n",
            channel.c_str(), static_cast<unsigned long long>(points.size()),
            max_breq / 1e6);
    appendf(out, "  %14s %18s\n", "t", "B_req");
    for (const auto& [t, v] : points) {
      appendf(out, "  %12.6f s %12.3f MB/s\n", t, v / 1e6);
    }
  }
  return out;
}

std::string breqTableCsv(const BinaryTrace& trace) {
  const auto series = breqSeries(trace);
  std::string out = "channel,t_seconds,required_bytes_per_second\n";
  for (const auto& [channel, points] : series) {
    for (const auto& [t, v] : points) {
      appendf(out, "%s,%.9f,%.6f\n", channel.c_str(), t, v);
    }
  }
  return out;
}

std::string chromeJsonFromBinaryTrace(const BinaryTrace& trace) {
  // Mirror TraceStreamer's file-mode byte stream exactly: header, events
  // separated by ",\n" as they drained, metadata records at close, footer
  // with the sink totals (preserved in the binlog footer).
  std::string out = "{\"traceEvents\":[\n";
  bool any_event_written = false;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    if (any_event_written) out += ",\n";
    out += traceEventJson(trace.event(i)).dump();
    any_event_written = true;
  }
  for (const Json& meta :
       traceMetadataEvents(trace.process_names, trace.thread_names)) {
    if (any_event_written) out += ",\n";
    out += meta.dump();
    any_event_written = true;
  }
  const JsonObject other{
      {"recorded", Json(trace.totals.recorded)},
      {"dropped", Json(trace.totals.dropped)},
      {"streamed", Json(trace.totals.streamed)},
      {"clock", Json(kTraceClockNote)},
  };
  out += "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":";
  out += Json(other).dump();
  out += "}\n";
  return out;
}

}  // namespace iobts::obs
