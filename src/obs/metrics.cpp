#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace iobts::obs {

void Histogram::observe(double value) {
  std::size_t i = 0;
  while (i < bounds.size() && value > bounds[i]) ++i;
  if (counts.size() != bounds.size() + 1) counts.resize(bounds.size() + 1, 0);
  ++counts[i];
  ++total;
  sum += value;
}

void MetricsRegistry::addCounter(const std::string& name,
                                 std::uint64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::setGauge(const std::string& name, double value) {
  gauges_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double value,
                              const std::vector<double>& bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    Histogram h;
    h.bounds = bounds;
    h.counts.assign(bounds.size() + 1, 0);
    it = histograms_.emplace(name, std::move(h)).first;
  }
  it->second.observe(value);
}

void MetricsRegistry::mergeHistogram(const std::string& name,
                                     const std::vector<double>& bounds,
                                     const std::uint64_t* counts,
                                     std::uint64_t total, double sum) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    Histogram h;
    h.bounds = bounds;
    h.counts.assign(bounds.size() + 1, 0);
    it = histograms_.emplace(name, std::move(h)).first;
  }
  Histogram& h = it->second;
  IOBTS_CHECK(h.bounds == bounds,
              "mergeHistogram bucket layout mismatch for " + name);
  for (std::size_t i = 0; i < h.counts.size(); ++i) h.counts[i] += counts[i];
  h.total += total;
  h.sum += sum;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const Histogram* MetricsRegistry::histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::dumpText() const {
  std::string out;
  char buf[64];
  for (const auto& [name, value] : counters_) {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    out += "counter ";
    out += name;
    out += " = ";
    out += buf;
    out += '\n';
  }
  for (const auto& [name, value] : gauges_) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += "gauge ";
    out += name;
    out += " = ";
    out += buf;
    out += '\n';
  }
  for (const auto& [name, h] : histograms_) {
    out += "histogram ";
    out += name;
    std::snprintf(buf, sizeof(buf), " total=%llu sum=%.17g buckets=[",
                  static_cast<unsigned long long>(h.total), h.sum);
    out += buf;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) out += ' ';
      if (i < h.bounds.size()) {
        std::snprintf(buf, sizeof(buf), "le%.17g:%llu", h.bounds[i],
                      static_cast<unsigned long long>(h.counts[i]));
      } else {
        std::snprintf(buf, sizeof(buf), "inf:%llu",
                      static_cast<unsigned long long>(h.counts[i]));
      }
      out += buf;
    }
    out += "]\n";
  }
  return out;
}

Json MetricsRegistry::toJson() const {
  JsonObject counters;
  for (const auto& [name, value] : counters_) counters[name] = Json(value);
  JsonObject gauges;
  for (const auto& [name, value] : gauges_) gauges[name] = Json(value);
  JsonObject histograms;
  for (const auto& [name, h] : histograms_) {
    JsonArray bounds;
    for (double b : h.bounds) bounds.push_back(Json(b));
    JsonArray counts;
    for (std::uint64_t c : h.counts) counts.push_back(Json(c));
    histograms[name] = Json(JsonObject{
        {"bounds", Json(std::move(bounds))},
        {"counts", Json(std::move(counts))},
        {"total", Json(h.total)},
        {"sum", Json(h.sum)},
    });
  }
  return Json(JsonObject{
      {"counters", Json(std::move(counters))},
      {"gauges", Json(std::move(gauges))},
      {"histograms", Json(std::move(histograms))},
  });
}

}  // namespace iobts::obs
