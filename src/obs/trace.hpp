// Structured event tracing for the simulator substrate.
//
// The paper's whole point is making I/O *visible*; this module makes the
// simulator itself visible. A TraceSink is a fixed-capacity ring buffer of
// POD trace events stamped with virtual sim::Time (and, optionally, real
// wall-clock durations). Instrumentation points throughout the stack --
// the event kernel, the SharedLink resolve path, the ADIO engine's
// sub-request pacing, the real-time I/O thread, the cluster scheduler --
// emit events here and nowhere else.
//
// Design constraints (see DESIGN.md "Observability plane"):
//
//   * Off by default, a single null-check when off. The sink is installed
//     through a global pointer; every instrumentation point loads it once
//     and skips all work when it is null. Simulation results are
//     bit-identical with tracing on or off -- recording never feeds back
//     into the model.
//   * Zero allocation per event. Events are PODs referencing static string
//     literals; the ring is allocated once at construction. When the ring
//     is full the *oldest* event is overwritten (the most recent window is
//     retained) and a drop counter records the loss.
//   * Deterministic exports. Event content is derived purely from
//     simulation state (virtual times, stable ids), so two identical runs
//     produce byte-identical Chrome-trace exports as long as wall-clock
//     capture stays off (its default).
//
// Track convention (Chrome trace "pid"/"tid"): one process per simulated
// subsystem, one thread per node/stream/channel within it -- see the
// obs::track constants. Thread/process display names can be registered at
// setup time (allocation there is fine; the per-event path stays POD).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace iobts::obs {

/// Chrome-trace-style event phases. Complete events carry a duration
/// (possibly zero: a synchronous step in virtual time); instants mark a
/// point; counters sample a value over time. Flow events ("s"/"t"/"f")
/// correlate spans across tracks into one request journey: each carries a
/// stable journey id in TraceEvent::flow and binds to the enclosing slice
/// on its (pid, tid) track, so Perfetto renders one arrow chain from an
/// MPI-IO submit through its paced sub-requests to the PFS transfer settle.
enum class Phase : std::uint8_t {
  Complete = 0,
  Instant = 1,
  Counter = 2,
  FlowStart = 3,
  FlowStep = 4,
  FlowEnd = 5,
};

/// Fixed "process" ids, one per simulated subsystem. Thread ids within a
/// process are stable simulation-state ids (channel index, stream id, job
/// id), never global mutable counters -- so two identical runs in the same
/// OS process still produce identical traces.
namespace track {
inline constexpr std::uint32_t kKernel = 1;    // sim event kernel (tid 0)
inline constexpr std::uint32_t kLink = 2;      // pfs::SharedLink (tid=channel)
inline constexpr std::uint32_t kStreams = 3;   // per-stream transfers (tid=stream)
inline constexpr std::uint32_t kAdio = 4;      // mpisim::AdioEngine (tid=stream)
inline constexpr std::uint32_t kCluster = 5;   // cluster scheduler (tid=job)
inline constexpr std::uint32_t kRtio = 6;      // rtio::IoThread (tid=op serial)
inline constexpr std::uint32_t kTmio = 7;      // tmio tracer B_req (tid=rank)
}  // namespace track

/// One recorded event. POD; `category` and `name` must point at storage
/// that outlives the sink (instrumentation sites use string literals).
struct TraceEvent {
  // Field order is deliberate: everything from `ts` through `flow` -- with
  // the padding after `phase` made explicit and always zero -- is one
  // deterministic 56-byte run laid out exactly like words 0..6 of a binlog
  // event record, so BinaryTraceWriter serializes an event as a single
  // bulk copy plus the interned-ids word. The string pointers sit last,
  // outside the copyable run, because they are what the binlog replaces.
  sim::Time ts = 0.0;    // virtual seconds (rtio: wall seconds since epoch)
  sim::Time dur = 0.0;   // virtual duration; Complete events only
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  Phase phase = Phase::Instant;
  std::uint8_t pad8[3] = {0, 0, 0};  // explicit padding, always zero
  std::uint32_t reserved = 0;        // explicit padding, always zero
  double value = 0.0;        // counter value / generic numeric argument
  std::uint64_t wall_ns = 0; // real duration (0 unless wall capture is on)
  std::uint64_t flow = 0;    // journey id; flow events only (0 = none)
  const char* category = "";
  const char* name = "";
};

struct TraceSinkConfig {
  /// Ring capacity in events; allocated once up front.
  std::size_t capacity = 1 << 16;
  /// Stamp Complete events with real wall-clock durations. Off by default:
  /// wall times differ between runs, so leaving this off keeps exports
  /// byte-identical across identical runs.
  bool capture_wall_time = false;
};

class MetricsRegistry;

/// Per-(category, name) duration statistics for closed spans, accumulated
/// allocation-free on the recording path. Bucket edges are fixed
/// (kSpanStatBounds); the slots merge into MetricsRegistry histograms at
/// export time, where matching string *contents* (not just pointers)
/// collapse into one histogram.
struct SpanStat {
  const char* category = nullptr;
  const char* name = nullptr;
  std::uint64_t count = 0;
  double sum = 0.0;  // virtual seconds
  std::uint64_t buckets[9] = {};
};

/// Upper bucket edges (seconds) for span-duration histograms; one overflow
/// bucket above the last edge brings the count to 9.
inline constexpr double kSpanStatBounds[8] = {1e-6, 1e-5, 1e-4, 1e-3,
                                              1e-2, 1e-1, 1.0,  10.0};

/// Fixed-capacity, thread-safe ring buffer of trace events.
class TraceSink {
 public:
  explicit TraceSink(TraceSinkConfig config = {});
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // --- Recording (thread-safe, allocation-free) ---------------------------

  void complete(const char* category, const char* name, std::uint32_t pid,
                std::uint32_t tid, sim::Time ts, sim::Time dur,
                double value = 0.0, std::uint64_t wall_ns = 0);
  void instant(const char* category, const char* name, std::uint32_t pid,
               std::uint32_t tid, sim::Time ts, double value = 0.0);
  void counter(const char* category, const char* name, std::uint32_t pid,
               std::uint32_t tid, sim::Time ts, double value);

  /// Flow events correlating spans across tracks into one journey.
  /// `journey` must be nonzero and stable across identical runs (derive it
  /// from simulation state: rank/request ids, never global counters). The
  /// exporter binds each flow event to the enclosing slice on its
  /// (pid, tid) track -- emit them at a timestamp inside the span they
  /// should attach to.
  void flowStart(const char* category, const char* name, std::uint32_t pid,
                 std::uint32_t tid, sim::Time ts, std::uint64_t journey);
  void flowStep(const char* category, const char* name, std::uint32_t pid,
                std::uint32_t tid, sim::Time ts, std::uint64_t journey);
  void flowEnd(const char* category, const char* name, std::uint32_t pid,
               std::uint32_t tid, sim::Time ts, std::uint64_t journey);

  /// Record an already-built event verbatim (same path as the typed
  /// recorders: ring push, span stats, drain hook). The sharded coordinator
  /// uses this to replay per-shard staged events into the installed sink in
  /// canonical order.
  void record(const TraceEvent& event);

  bool captureWallTime() const noexcept { return config_.capture_wall_time; }

  /// Monotonic wall clock in nanoseconds since sink construction; returns 0
  /// when wall capture is off so callers can subtract unconditionally.
  std::uint64_t wallNowNs() const noexcept;

  // --- Introspection ------------------------------------------------------

  std::size_t capacity() const noexcept { return config_.capacity; }
  /// Events currently retained (<= capacity).
  std::size_t size() const;
  /// Total events ever recorded (retained + dropped).
  std::uint64_t recorded() const;
  /// Events overwritten after the ring wrapped.
  std::uint64_t dropped() const;
  /// Events handed to drainInto() (streaming export; see TraceStreamer).
  std::uint64_t streamed() const;

  /// Copy of the retained events, oldest first.
  std::vector<TraceEvent> snapshot() const;

  /// Drop all retained events (drop/record counters keep counting).
  void clear();

  // --- Streaming drain (see obs/stream.hpp) -------------------------------

  /// Append all retained events to `out` oldest first and mark them
  /// streamed (they leave the ring without counting as drops). Returns the
  /// number of events moved.
  std::size_t drainInto(std::vector<TraceEvent>& out);

  /// Zero-copy drain: hand the retained events to `fn` as at most two
  /// contiguous ring segments (oldest first), then mark them streamed.
  /// `fn` runs *under the sink lock* directly against ring storage -- no
  /// copy into a staging vector -- so it must be quick, must not record
  /// into this sink, and must not call back into any sink method. The
  /// binary trace writer (obs/binlog.hpp) encodes straight out of the ring
  /// through this path. Returns the number of events handed over.
  using DrainSegmentFn = void (*)(void* ctx, const TraceEvent* events,
                                  std::size_t count);
  std::size_t drainSegments(DrainSegmentFn fn, void* ctx);

  /// Install a drain trigger: after recording an event, `hook(ctx)` fires
  /// (outside the sink lock) when ring occupancy reaches
  /// ceil(occupancy_watermark * capacity) events, or -- if `time_watermark`
  /// is > 0 -- when the recorded event's virtual timestamp has advanced at
  /// least `time_watermark` seconds past the end of the previous drain.
  /// The hook typically calls drainInto(); it must tolerate reentrant
  /// recording only if its own sink does. One hook at a time.
  void setDrainHook(void (*hook)(void*), void* ctx, double occupancy_watermark,
                    sim::Time time_watermark);
  void clearDrainHook();

  // --- Metrics export -----------------------------------------------------

  /// Publish recording counters (obs.trace.recorded_events /
  /// dropped_events / streamed_events, retained/capacity gauges) and the
  /// per-span duration histograms ("obs.span.<category>.<name>") into
  /// `registry`. Span stats cover every Complete event ever recorded,
  /// including dropped and streamed ones.
  void exportMetrics(MetricsRegistry& registry) const;

  /// Read-only view of the accumulated span-duration stats (unused slots
  /// have null names). `spanStatOverflow` counts Complete events whose
  /// (category, name) could not claim a slot in the fixed table.
  std::vector<SpanStat> spanStats() const;
  std::uint64_t spanStatOverflow() const;

  // --- Track names (setup-time; allocation allowed) -----------------------

  void setProcessName(std::uint32_t pid, std::string name);
  void setThreadName(std::uint32_t pid, std::uint32_t tid, std::string name);
  std::map<std::uint32_t, std::string> processNames() const;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> threadNames()
      const;

 private:
  static constexpr std::size_t kSpanSlots = 64;

  void push(const TraceEvent& event);
  void flow(Phase phase, const char* category, const char* name,
            std::uint32_t pid, std::uint32_t tid, sim::Time ts,
            std::uint64_t journey);
  void recordSpanStatLocked(const TraceEvent& event);

  TraceSinkConfig config_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;   // next write position
  std::size_t count_ = 0;  // retained events
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t streamed_ = 0;
  std::map<std::uint32_t, std::string> process_names_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> thread_names_;
  std::uint64_t wall_epoch_ns_ = 0;
  // Span-stat table: open addressing keyed on the name pointer (string
  // literals make pointer identity a near-perfect key; export merges by
  // content anyway).
  SpanStat span_stats_[kSpanSlots] = {};
  std::uint64_t span_stat_overflow_ = 0;
  // Drain trigger (null hook = streaming off).
  void (*drain_hook_)(void*) = nullptr;
  void* drain_ctx_ = nullptr;
  std::size_t drain_trigger_count_ = 0;
  sim::Time drain_interval_ = 0.0;
  sim::Time next_drain_ts_ = 0.0;
  bool drain_ts_armed_ = false;
};

namespace detail {
/// The installed sink. Read via obs::traceSink() on every instrumentation
/// point; null means "tracing off" and costs exactly one relaxed load plus
/// a branch.
extern std::atomic<TraceSink*> g_trace_sink;
/// Per-thread override consulted before the global sink. A sharded
/// simulation worker points this at the staging sink of the shard it is
/// currently draining, so instrumentation emitted from parallel windows
/// lands in per-shard buffers that merge canonically at the window barrier
/// (see sim/sharded.hpp). Null everywhere else; the cost when unused is one
/// thread-local load and a predictable branch.
extern thread_local TraceSink* t_trace_sink_override;
}  // namespace detail

inline TraceSink* traceSink() noexcept {
  TraceSink* const override_sink = detail::t_trace_sink_override;
  if (override_sink != nullptr) return override_sink;
  return detail::g_trace_sink.load(std::memory_order_relaxed);
}

/// Install (or uninstall, with nullptr) the global sink. The sink must
/// outlive its installation; install before constructing instrumented
/// components if you want their setup-time track names registered.
void installTraceSink(TraceSink* sink) noexcept;

/// Install (or clear, with nullptr) this thread's override sink; returns
/// the previous override. Used by sharded-simulation workers around each
/// per-shard window; normal code never needs it.
TraceSink* installThreadTraceSink(TraceSink* sink) noexcept;

// --- Journey sampling -------------------------------------------------------
//
// Flow-event chains ("request journeys") are the densest trace traffic a
// fleet run emits: every MPI-IO request adds a flowStart, one flowStep per
// paced sub-request and backoff, and a flowEnd. IOBTS_TRACE_JOURNEY_SAMPLE=N
// keeps every Nth journey and drops the rest *at journey-id level*: the
// decision is a pure function of the stable journey id (journey % N == 0),
// never of an RNG or a counter, so sampled traces are identical across
// reruns and across thread counts, and a kept journey is always complete
// (all of its flow events share the id, so they all pass the same test).

/// Parse an IOBTS_TRACE_JOURNEY_SAMPLE-style stride string. Returns the
/// stride for a plain positive decimal integer and 0 for anything else:
/// empty, signed ("-3", "+2"), zero, trailing garbage ("12x"), non-numeric,
/// or out of uint64 range. Exposed so the rejection matrix is unit-testable
/// without mutating the process environment.
std::uint64_t parseJourneySampleStride(const char* text) noexcept;

/// Current stride: 1 records every journey (the default). Reads
/// IOBTS_TRACE_JOURNEY_SAMPLE once; invalid values (zero, negative,
/// garbage, overflow) fall back to 1 with a single warning.
/// setJourneySampleStride() overrides it.
std::uint64_t journeySampleStride() noexcept;

/// Programmatic override for benchmarks/tests; 0 restores the environment
/// value. Not thread-safe against concurrent recording -- call at setup.
void setJourneySampleStride(std::uint64_t stride) noexcept;

/// Maps a journey id to itself when the journey is sampled, else to 0 (the
/// instrumentation sites' "no journey" value, which suppresses the whole
/// flow chain downstream).
std::uint64_t sampledJourney(std::uint64_t journey) noexcept;

/// RAII installation for tests and examples.
class ScopedTraceSink {
 public:
  explicit ScopedTraceSink(TraceSink& sink) : previous_(traceSink()) {
    installTraceSink(&sink);
  }
  ~ScopedTraceSink() { installTraceSink(previous_); }
  ScopedTraceSink(const ScopedTraceSink&) = delete;
  ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;

 private:
  TraceSink* previous_;
};

}  // namespace iobts::obs
