#include "obs/binlog.hpp"

#if IOBTS_BINLOG_X86
#include <immintrin.h>
#endif

#if defined(__GNUC__) || defined(__clang__)
#define IOBTS_RESTRICT __restrict__
#else
#define IOBTS_RESTRICT
#endif

// GCC needs the vectorizer cranked up for the checksum's lane scan to turn
// into packed shift/xor; everything else in this file is fine at -O2.
#if defined(__GNUC__) && !defined(__clang__)
#define IOBTS_VECTOR_SCAN __attribute__((optimize("O3,unroll-loops")))
#else
#define IOBTS_VECTOR_SCAN
#endif

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <numeric>

namespace iobts::obs {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
// Lane seeds: lane i starts at kFnvOffset perturbed by i times the golden
// ratio, so no two lanes ever share a state.
constexpr std::uint64_t kFnvGolden = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t fnvLaneSeed(unsigned lane) {
  return kFnvOffset ^ (kFnvGolden * lane);
}

constexpr std::uint64_t rotl1(std::uint64_t v) noexcept {
  return (v << 1) | (v >> 63);
}

std::uint64_t fnvWordStep(std::uint64_t h, std::uint64_t word) noexcept {
  h ^= word;
  h *= kFnvPrime;
  return h;
}

// On little-endian hosts the wire layout *is* the in-memory layout, and the
// memcpy forms compile to single loads/stores -- the byte-shift fallbacks
// keep big-endian hosts correct.
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
constexpr bool kHostLittleEndian = true;
#else
constexpr bool kHostLittleEndian = false;
#endif

void putU32(char* out, std::uint32_t v) noexcept {
  if constexpr (kHostLittleEndian) {
    std::memcpy(out, &v, sizeof(v));
  } else {
    for (int i = 0; i < 4; ++i) {
      out[i] = static_cast<char>((v >> (8 * i)) & 0xffU);
    }
  }
}

void putU64(char* out, std::uint64_t v) noexcept {
  if constexpr (kHostLittleEndian) {
    std::memcpy(out, &v, sizeof(v));
  } else {
    for (int i = 0; i < 8; ++i) {
      out[i] = static_cast<char>((v >> (8 * i)) & 0xffU);
    }
  }
}

void putF64(char* out, double v) noexcept {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  putU64(out, bits);
}

void appendU32(std::string& out, std::uint32_t v) {
  char buf[4];
  putU32(buf, v);
  out.append(buf, sizeof(buf));
}

void appendU64(std::string& out, std::uint64_t v) {
  char buf[8];
  putU64(buf, v);
  out.append(buf, sizeof(buf));
}

void appendF64(std::string& out, double v) {
  char buf[8];
  putF64(buf, v);
  out.append(buf, sizeof(buf));
}

std::uint32_t readU32(const char* data) noexcept {
  if constexpr (kHostLittleEndian) {
    std::uint32_t out;
    std::memcpy(&out, data, sizeof(out));
    return out;
  } else {
    std::uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[i]))
             << (8 * i);
    }
    return out;
  }
}

std::uint64_t readU64(const char* data) noexcept {
  if constexpr (kHostLittleEndian) {
    std::uint64_t out;
    std::memcpy(&out, data, sizeof(out));
    return out;
  } else {
    std::uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[i]))
             << (8 * i);
    }
    return out;
  }
}

double readF64(const char* data) noexcept {
  const std::uint64_t bits = readU64(data);
  double out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

std::uint64_t f64Bits(double v) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double f64FromBits(std::uint64_t bits) noexcept {
  double out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

/// Strict little-endian cursor over the container bytes. Running out of
/// file bytes is Truncated with the offset and what was being read.
class FileReader {
 public:
  FileReader(const std::string& bytes, const std::string& origin)
      : bytes_(bytes), origin_(origin) {}

  std::size_t offset() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

  const char* take(std::size_t n, const char* what) {
    if (remaining() < n) {
      throw BinlogError(
          BinlogErrorKind::Truncated,
          origin_ + ": truncated trace: need " + std::to_string(n) +
              " byte(s) for " + what + " at offset " + std::to_string(pos_) +
              ", only " + std::to_string(remaining()) + " left");
    }
    const char* out = bytes_.data() + pos_;
    pos_ += n;
    return out;
  }

  std::uint32_t u32(const char* what) { return readU32(take(4, what)); }
  std::uint64_t u64(const char* what) { return readU64(take(8, what)); }

 private:
  const std::string& bytes_;
  const std::string& origin_;
  std::size_t pos_ = 0;
};

/// Cursor over one chunk's payload. The payload length was already
/// satisfied at file level, so running out of bytes *inside* it means the
/// chunk's internal structure lies about itself: Malformed, not Truncated.
class PayloadReader {
 public:
  PayloadReader(const char* data, std::size_t size, const std::string& origin,
                const char* chunk)
      : data_(data), size_(size), origin_(origin), chunk_(chunk) {}

  std::size_t remaining() const noexcept { return size_ - pos_; }

  const char* take(std::size_t n, const char* what) {
    if (remaining() < n) {
      throw BinlogError(
          BinlogErrorKind::Malformed,
          origin_ + ": " + chunk_ + " chunk: need " + std::to_string(n) +
              " byte(s) for " + what + ", only " +
              std::to_string(remaining()) + " left in the payload");
    }
    const char* out = data_ + pos_;
    pos_ += n;
    return out;
  }

  void requireDrained() const {
    if (remaining() != 0) {
      throw BinlogError(BinlogErrorKind::Malformed,
                        origin_ + ": " + chunk_ + " chunk has " +
                            std::to_string(remaining()) +
                            " trailing payload byte(s)");
    }
  }

  std::uint32_t u32(const char* what) { return readU32(take(4, what)); }
  std::uint64_t u64(const char* what) { return readU64(take(8, what)); }

  /// LEB128 varint; must terminate within 64 bits.
  std::uint64_t varint(const char* what) {
    std::uint64_t out = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      const auto b = static_cast<unsigned char>(*take(1, what));
      out |= static_cast<std::uint64_t>(b & 0x7fU) << shift;
      if ((b & 0x80U) == 0) {
        if (shift == 63 && (b & 0x7eU) != 0) break;  // bits beyond 64 lost
        return out;
      }
    }
    throw BinlogError(BinlogErrorKind::Malformed,
                      origin_ + ": " + chunk_ + " chunk: varint for " +
                          std::string(what) +
                          " does not terminate within 64 bits");
  }

 private:
  const char* data_;
  std::size_t size_;
  const std::string& origin_;
  const char* chunk_;
  std::size_t pos_ = 0;
};

std::uint64_t readPaddedWord(const char* data, std::size_t n) noexcept {
  char buf[8] = {};
  std::memcpy(buf, data, n);
  return readU64(buf);
}

// --- v2 delta record encoding ----------------------------------------------

char* putVarint(char* dst, std::uint64_t v) noexcept {
  while (v >= 0x80) {
    *dst++ = static_cast<char>(v | 0x80U);
    v >>= 7;
  }
  *dst++ = static_cast<char>(v);
  return dst;
}

/// Zigzag of the wraparound delta new - prev: small bit-pattern movements in
/// either direction become small varints.
std::uint64_t zigzagDelta(std::uint64_t now, std::uint64_t prev) noexcept {
  const auto d = static_cast<std::int64_t>(now - prev);
  return (static_cast<std::uint64_t>(d) << 1) ^
         static_cast<std::uint64_t>(d >> 63);
}

/// Inverse: the u64 delta to add (with wraparound) to the previous value.
std::uint64_t unzigzag(std::uint64_t v) noexcept {
  return (v >> 1) ^ (0 - (v & 1));
}

/// Fold one event's virtual-time span into the open chunk's cover.
void coverEvent(detail::BinlogDeltaState& st, double ts, double dur) noexcept {
  const double lo = ts;
  const double hi = ts + (dur > 0.0 ? dur : 0.0);
  if (st.count == 0) {
    st.t_min = lo;
    st.t_max = hi;
  } else {
    if (lo < st.t_min) st.t_min = lo;
    if (hi > st.t_max) st.t_max = hi;
  }
  ++st.count;
}

// v2 record flag bits (bits 0-2 are the phase).
constexpr unsigned kFlagDur = 0x08;
constexpr unsigned kFlagValue = 0x10;
constexpr unsigned kFlagFlow = 0x20;
constexpr unsigned kFlagWall = 0x40;
constexpr unsigned kFlagReserved = 0x80;

/// Encode one event against the chunk's delta state. Writes at most
/// kBinlogV2MaxRecordBytes; returns the advanced cursor.
char* encodeDeltaRecord(char* dst, const TraceEvent& e,
                        std::uint32_t category_id, std::uint32_t name_id,
                        detail::BinlogDeltaState& st) noexcept {
  const std::uint64_t ts_bits = f64Bits(e.ts);
  const std::uint64_t dur_bits = f64Bits(e.dur);
  const std::uint64_t value_bits = f64Bits(e.value);
  const bool has_dur = dur_bits != st.dur_bits;
  const bool has_value = value_bits != st.value_bits;
  const bool has_flow = e.flow != 0;
  const bool has_wall = e.wall_ns != st.wall;
  unsigned flags = static_cast<unsigned>(e.phase) & 0x7U;
  if (has_dur) flags |= kFlagDur;
  if (has_value) flags |= kFlagValue;
  if (has_flow) flags |= kFlagFlow;
  if (has_wall) flags |= kFlagWall;
  *dst++ = static_cast<char>(flags);
  dst = putVarint(dst, e.pid);
  dst = putVarint(dst, e.tid);
  dst = putVarint(dst, category_id);
  dst = putVarint(dst, name_id);
  dst = putVarint(dst, zigzagDelta(ts_bits, st.ts_bits));
  if (has_wall) dst = putVarint(dst, zigzagDelta(e.wall_ns, st.wall));
  if (has_dur) dst = putVarint(dst, zigzagDelta(dur_bits, st.dur_bits));
  if (has_value) dst = putVarint(dst, zigzagDelta(value_bits, st.value_bits));
  if (has_flow) dst = putVarint(dst, e.flow);
  st.ts_bits = ts_bits;
  st.wall = e.wall_ns;
  st.dur_bits = dur_bits;
  st.value_bits = value_bits;
  coverEvent(st, e.ts, e.dur);
  return dst;
}

/// True when the event's span [ts, ts + max(dur, 0)] intersects the window.
bool eventInWindow(const BinEvent& e, const TraceWindow& w) noexcept {
  const double hi = e.ts + (e.dur > 0.0 ? e.dur : 0.0);
  return e.ts <= w.to && hi >= w.from;
}

/// Meta-chunk payload from a sink's registered track names (empty tables
/// for a null sink).
std::string buildMetaPayload(const TraceSink* sink) {
  std::string meta;
  if (sink == nullptr) {
    appendU32(meta, 0);
    appendU32(meta, 0);
    return meta;
  }
  const auto processes = sink->processNames();
  appendU32(meta, static_cast<std::uint32_t>(processes.size()));
  for (const auto& [pid, name] : processes) {
    appendU32(meta, pid);
    appendU32(meta, static_cast<std::uint32_t>(name.size()));
    meta += name;
  }
  const auto threads = sink->threadNames();
  appendU32(meta, static_cast<std::uint32_t>(threads.size()));
  for (const auto& [key, name] : threads) {
    appendU32(meta, key.first);
    appendU32(meta, key.second);
    appendU32(meta, static_cast<std::uint32_t>(name.size()));
    meta += name;
  }
  return meta;
}

}  // namespace

IOBTS_VECTOR_SCAN
std::uint64_t binlogChecksum(const char* data, std::size_t size) noexcept {
  // Four rotate-xor lanes compressed with FNV-1a at the end. Word j feeds
  // lane j % 4 as lane = rotl(lane, 1) ^ word: the lane pass is pure
  // shift/xor with no multiplies or cross-word dependencies, so it runs
  // near memory speed, and -- the reason it is four lanes and not eight --
  // all four accumulators fit in registers alongside the writer's loop
  // state, letting BinaryTraceWriter fold each 64-byte event record into
  // the running lanes inline with zero stack traffic. Every payload bit
  // lands in a lane (flips are always detected; the rotation count
  // position-stamps each word within its lane), the combine step is
  // genuine FNV-1a over the four lanes, and the payload length is bound
  // last -- a final partial word is zero-padded, which the bound length
  // disambiguates.
  std::uint64_t lanes[4];
  for (unsigned i = 0; i < 4; ++i) lanes[i] = fnvLaneSeed(i);
  std::size_t i = 0;
  for (; i + 32 <= size; i += 32) {
    for (unsigned w = 0; w < 4; ++w) {
      lanes[w] = rotl1(lanes[w]) ^ readU64(data + i + 8 * w);
    }
  }
  unsigned lane = 0;
  for (; i + 8 <= size; i += 8, ++lane) {
    lanes[lane] = rotl1(lanes[lane]) ^ readU64(data + i);
  }
  if (i < size) {
    lanes[lane] = rotl1(lanes[lane]) ^ readPaddedWord(data + i, size - i);
  }
  std::uint64_t h = kFnvOffset;
  for (unsigned w = 0; w < 4; ++w) h = fnvWordStep(h, lanes[w]);
  return fnvWordStep(h, size);
}

std::uint64_t binlogTrailerDigest(const char* data, std::size_t size) {
  if (size < sizeof(kBinlogMagic) + 4) {
    throw BinlogError(BinlogErrorKind::Truncated,
                      "<trailer digest>: body of " + std::to_string(size) +
                          " byte(s) is shorter than the file header");
  }
  std::uint64_t h = kFnvOffset;
  h = fnvWordStep(h, readU64(data));
  h = fnvWordStep(h, readU32(data + sizeof(kBinlogMagic)));
  std::size_t pos = sizeof(kBinlogMagic) + 4;
  while (pos < size) {
    if (size - pos < 12) {
      throw BinlogError(BinlogErrorKind::Truncated,
                        "<trailer digest>: chunk header truncated at offset " +
                            std::to_string(pos));
    }
    const std::uint32_t kind = readU32(data + pos);
    const std::uint64_t len = readU64(data + pos + 4);
    if (size - pos - 12 < len + 8) {
      throw BinlogError(BinlogErrorKind::Truncated,
                        "<trailer digest>: chunk payload truncated at offset " +
                            std::to_string(pos));
    }
    const std::uint64_t sum = readU64(data + pos + 12 + len);
    h = fnvWordStep(h, kind);
    h = fnvWordStep(h, len);
    h = fnvWordStep(h, sum);
    pos += 12 + len + 8;
  }
  return h;
}

const char* binlogErrorKindName(BinlogErrorKind kind) noexcept {
  switch (kind) {
    case BinlogErrorKind::Io: return "io";
    case BinlogErrorKind::Truncated: return "truncated";
    case BinlogErrorKind::BadMagic: return "bad_magic";
    case BinlogErrorKind::BadVersion: return "bad_version";
    case BinlogErrorKind::ChunkChecksum: return "chunk_checksum";
    case BinlogErrorKind::FileChecksum: return "file_checksum";
    case BinlogErrorKind::Malformed: return "malformed";
    case BinlogErrorKind::MissingFooter: return "missing_footer";
    case BinlogErrorKind::BadStringRef: return "bad_string_ref";
    case BinlogErrorKind::BadIndex: return "bad_index";
    case BinlogErrorKind::BadShard: return "bad_shard";
  }
  return "unknown";
}

bool looksLikeBinaryTrace(const std::string& bytes) noexcept {
  return bytes.size() >= sizeof(kBinlogMagic) &&
         std::memcmp(bytes.data(), kBinlogMagic, sizeof(kBinlogMagic)) == 0;
}

TraceEvent BinaryTrace::event(std::size_t i) const {
  const BinEvent& e = events.at(i);
  TraceEvent out;
  out.ts = e.ts;
  out.dur = e.dur;
  out.category = strings.at(e.category).c_str();
  out.name = strings.at(e.name).c_str();
  out.pid = e.pid;
  out.tid = e.tid;
  out.phase = e.phase;
  out.value = e.value;
  out.wall_ns = e.wall_ns;
  out.flow = e.flow;
  return out;
}

// --- Decoding ---------------------------------------------------------------

namespace {

/// The chunk-sequence decoder shared by the strict whole-file reader, the
/// index-seeking windowed reader, and the --follow tail reader. Callers
/// verify each chunk's checksum, then hand the payload to consumeChunk();
/// finalize() produces the canonically merged BinaryTrace.
///
/// strict mode (whole-file + tail reader): chunk order is enforced
/// (nothing after the index chunk but the footer), the index chunk is
/// cross-checked entry-by-entry against the chunks actually decoded, and
/// the footer's counts are verified. The windowed reader runs non-strict:
/// it feeds footer and index *first* and deliberately skips events chunks,
/// so those cross-checks cannot apply (it re-checks decoded chunks against
/// their index entries itself).
class ContainerDecoder {
 public:
  ContainerDecoder(std::string origin, bool strict)
      : origin_(std::move(origin)), strict_(strict) {}

  void setVersion(std::uint32_t v) noexcept { version_ = v; }
  std::uint32_t version() const noexcept { return version_; }
  bool footerSeen() const noexcept { return footer_seen_; }
  bool indexSeen() const noexcept { return index_seen_; }
  std::uint64_t indexOffset() const noexcept { return index_offset_; }
  std::uint64_t chunksConsumed() const noexcept { return chunks_; }
  std::uint64_t eventsDecoded() const noexcept { return events_.size(); }
  const std::vector<BinlogIndexEntry>& observedIndex() const noexcept {
    return observed_;
  }
  const std::vector<BinlogIndexEntry>& declaredIndex() const noexcept {
    return declared_index_;
  }

  /// Decode one checksum-verified chunk. Returns what the index *should*
  /// say about it (kind, shard, offset, payload length, event count, time
  /// cover) -- the windowed reader compares this against the index entry
  /// it seeked by.
  BinlogIndexEntry consumeChunk(std::uint32_t kind, const char* payload,
                                std::uint64_t len, std::uint64_t offset) {
    BinlogIndexEntry entry;
    entry.kind = kind;
    entry.offset = offset;
    entry.payload_len = len;
    ++chunks_;
    switch (kind) {
      case binchunk::kStrings: {
        requirePreIndex("strings");
        PayloadReader p(payload, len, origin_, "strings");
        std::uint32_t shard = 0;
        if (version_ >= 2) {
          shard = p.u32("shard id");
          checkShard(shard, "strings chunk");
        }
        entry.shard = shard;
        auto& table = shards_[shard].strings;
        const std::uint32_t count = p.u32("string count");
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::uint32_t slen = p.u32("string length");
          const char* data = p.take(slen, "string bytes");
          table.emplace_back(data, slen);
        }
        p.requireDrained();
        break;
      }
      case binchunk::kEvents: {
        requirePreIndex("events");
        ++events_chunks_;
        if (version_ >= 2) {
          decodeEventsV2(payload, len, entry);
        } else {
          decodeEventsV1(payload, len, entry);
        }
        break;
      }
      case binchunk::kMeta: {
        requirePreIndex("meta");
        PayloadReader p(payload, len, origin_, "meta");
        const std::uint32_t processes = p.u32("process-name count");
        for (std::uint32_t i = 0; i < processes; ++i) {
          const std::uint32_t pid = p.u32("process id");
          const std::uint32_t slen = p.u32("process name length");
          const char* data = p.take(slen, "process name");
          process_names_[pid] = std::string(data, slen);
        }
        const std::uint32_t threads = p.u32("thread-name count");
        for (std::uint32_t i = 0; i < threads; ++i) {
          const std::uint32_t pid = p.u32("thread process id");
          const std::uint32_t tid = p.u32("thread id");
          const std::uint32_t slen = p.u32("thread name length");
          const char* data = p.take(slen, "thread name");
          thread_names_[{pid, tid}] = std::string(data, slen);
        }
        p.requireDrained();
        break;
      }
      case binchunk::kIndex: {
        if (version_ < 2) {
          throw BinlogError(BinlogErrorKind::Malformed,
                            origin_ + ": unknown chunk kind " +
                                std::to_string(kind));
        }
        decodeIndex(payload, len);
        break;
      }
      case binchunk::kFooter: {
        decodeFooter(payload, len);
        footer_seen_ = true;
        break;
      }
      default:
        throw BinlogError(BinlogErrorKind::Malformed,
                          origin_ + ": unknown chunk kind " +
                              std::to_string(kind));
    }
    if (version_ >= 2 &&
        (kind == binchunk::kStrings || kind == binchunk::kEvents ||
         kind == binchunk::kMeta)) {
      observed_.push_back(entry);
    }
    return entry;
  }

  /// The canonically merged trace from everything consumed so far.
  BinaryTrace finalize() const {
    BinaryTrace t;
    t.version = version_;
    std::uint32_t max_shard_plus1 = 0;
    for (const auto& [shard, state] : shards_) {
      max_shard_plus1 = std::max(max_shard_plus1, shard + 1);
    }
    t.shard_count = std::max({declared_shard_count_, max_shard_plus1, 1U});
    t.process_names = process_names_;
    t.thread_names = thread_names_;
    t.totals = totals_;
    t.index = declared_index_;
    if (shards_.size() <= 1) {
      // Single recording stream: file order *is* canonical order and the
      // shard's local string ids are already global -- this identity path
      // is what keeps v2 single-writer reports byte-identical to v1's.
      if (!shards_.empty()) t.strings = shards_.begin()->second.strings;
      t.events = events_;
    } else {
      std::vector<std::size_t> perm(events_.size());
      std::iota(perm.begin(), perm.end(), std::size_t{0});
      std::sort(perm.begin(), perm.end(),
                [this](std::size_t a, std::size_t b) {
                  const BinEvent& ea = events_[a];
                  const BinEvent& eb = events_[b];
                  // NaN timestamps compare false both ways and fall through
                  // to the (shard, seq) tiebreak -- still a total order.
                  if (ea.ts < eb.ts) return true;
                  if (eb.ts < ea.ts) return false;
                  if (ea.shard != eb.shard) return ea.shard < eb.shard;
                  return seqs_[a] < seqs_[b];
                });
      // Global string ids: content-deduplicated, in merged first-use order
      // -- a pure function of the merged event stream, not of how shard
      // chunks interleaved in the file.
      std::map<std::string, std::uint32_t> by_content;
      std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> remap;
      auto globalId = [&](std::uint32_t shard, std::uint32_t local) {
        const auto key = std::make_pair(shard, local);
        auto it = remap.find(key);
        if (it != remap.end()) return it->second;
        const std::string& content = shards_.at(shard).strings.at(local);
        auto [cit, inserted] =
            by_content.try_emplace(content, 0U);
        if (inserted) {
          cit->second = static_cast<std::uint32_t>(t.strings.size());
          t.strings.push_back(content);
        }
        remap.emplace(key, cit->second);
        return cit->second;
      };
      t.events.reserve(events_.size());
      for (const std::size_t i : perm) {
        BinEvent e = events_[i];
        e.category = globalId(e.shard, e.category);
        e.name = globalId(e.shard, e.name);
        t.events.push_back(e);
      }
      // Interned strings no event references still belong in the table
      // (the footer's string count was checked against the shard tables):
      // deterministic (shard, local id) order after all referenced ones.
      for (const auto& [shard, state] : shards_) {
        const auto n = static_cast<std::uint32_t>(state.strings.size());
        for (std::uint32_t local = 0; local < n; ++local) {
          globalId(shard, local);
        }
      }
    }
    t.stats.chunks_total = chunks_;
    t.stats.events_chunks_decoded = events_chunks_;
    t.stats.events_decoded = events_.size();
    t.stats.events_in_window = t.events.size();
    return t;
  }

 private:
  struct ShardState {
    std::vector<std::string> strings;
    std::uint64_t seq = 0;  ///< per-shard recording sequence (merge tiebreak)
  };

  void checkShard(std::uint32_t shard, const char* what) const {
    if (shard >= kBinlogMaxShards) {
      throw BinlogError(BinlogErrorKind::BadShard,
                        origin_ + ": " + what + " carries shard id " +
                            std::to_string(shard) + " (limit " +
                            std::to_string(kBinlogMaxShards) + ")");
    }
  }

  void requirePreIndex(const char* what) const {
    if (strict_ && index_seen_) {
      throw BinlogError(BinlogErrorKind::Malformed,
                        origin_ + ": " + what +
                            " chunk after the index chunk");
    }
  }

  void decodeEventsV1(const char* payload, std::uint64_t len,
                      BinlogIndexEntry& entry) {
    PayloadReader p(payload, len, origin_, "events");
    if (p.remaining() % kBinlogEventBytes != 0) {
      throw BinlogError(
          BinlogErrorKind::Malformed,
          origin_ + ": events chunk payload of " +
              std::to_string(p.remaining()) +
              " byte(s) is not a whole number of " +
              std::to_string(kBinlogEventBytes) + "-byte event record(s)");
    }
    const std::size_t count = p.remaining() / kBinlogEventBytes;
    auto& shard0 = shards_[0];
    detail::BinlogDeltaState cover;
    events_.reserve(events_.size() + count);
    for (std::size_t i = 0; i < count; ++i) {
      const char* r = p.take(kBinlogEventBytes, "event record");
      BinEvent e;
      e.ts = readF64(r);
      e.dur = readF64(r + 8);
      e.pid = readU32(r + 16);
      e.tid = readU32(r + 20);
      const std::uint32_t phase = readU32(r + 24);
      if (phase > static_cast<std::uint32_t>(Phase::FlowEnd)) {
        throw BinlogError(BinlogErrorKind::Malformed,
                          origin_ + ": event " +
                              std::to_string(events_.size()) +
                              " has unknown phase " + std::to_string(phase));
      }
      e.phase = static_cast<Phase>(phase);
      e.value = readF64(r + 32);
      e.wall_ns = readU64(r + 40);
      e.flow = readU64(r + 48);
      e.category = readU32(r + 56);
      e.name = readU32(r + 60);
      const auto table = static_cast<std::uint32_t>(shard0.strings.size());
      if (e.category >= table || e.name >= table) {
        const std::uint32_t bad = e.category >= table ? e.category : e.name;
        throw BinlogError(
            BinlogErrorKind::BadStringRef,
            origin_ + ": event " + std::to_string(events_.size()) +
                " references string id " + std::to_string(bad) +
                " but only " + std::to_string(table) +
                " string(s) are defined at this point");
      }
      coverEvent(cover, e.ts, e.dur);
      events_.push_back(e);
      seqs_.push_back(shard0.seq++);
    }
    entry.shard = 0;
    entry.event_count = count;
    entry.t_min = cover.t_min;
    entry.t_max = cover.t_max;
  }

  void decodeEventsV2(const char* payload, std::uint64_t len,
                      BinlogIndexEntry& entry) {
    PayloadReader p(payload, len, origin_, "events");
    const std::uint32_t shard = p.u32("shard id");
    checkShard(shard, "events chunk");
    entry.shard = shard;
    const std::uint32_t count = p.u32("event count");
    auto& state = shards_[shard];
    detail::BinlogDeltaState d;
    events_.reserve(events_.size() + count);
    auto varintU32 = [this, &p](const char* what) {
      const std::uint64_t v = p.varint(what);
      if (v > 0xffffffffULL) {
        throw BinlogError(BinlogErrorKind::Malformed,
                          origin_ + ": event " + std::to_string(events_.size()) +
                              ": varint for " + what + " (" +
                              std::to_string(v) + ") overflows 32 bits");
      }
      return static_cast<std::uint32_t>(v);
    };
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto flags =
          static_cast<unsigned char>(*p.take(1, "event flags"));
      if ((flags & kFlagReserved) != 0) {
        throw BinlogError(BinlogErrorKind::Malformed,
                          origin_ + ": event " +
                              std::to_string(events_.size()) +
                              " has reserved flag bit 7 set");
      }
      const unsigned phase = flags & 0x7U;
      if (phase > static_cast<unsigned>(Phase::FlowEnd)) {
        throw BinlogError(BinlogErrorKind::Malformed,
                          origin_ + ": event " +
                              std::to_string(events_.size()) +
                              " has unknown phase " + std::to_string(phase));
      }
      BinEvent e;
      e.phase = static_cast<Phase>(phase);
      e.shard = shard;
      e.pid = varintU32("pid");
      e.tid = varintU32("tid");
      e.category = varintU32("category id");
      e.name = varintU32("name id");
      d.ts_bits += unzigzag(p.varint("ts delta"));
      if ((flags & kFlagWall) != 0) {
        d.wall += unzigzag(p.varint("wall delta"));
      }
      if ((flags & kFlagDur) != 0) {
        d.dur_bits += unzigzag(p.varint("dur delta"));
      }
      if ((flags & kFlagValue) != 0) {
        d.value_bits += unzigzag(p.varint("value delta"));
      }
      e.flow = (flags & kFlagFlow) != 0 ? p.varint("flow id") : 0;
      e.ts = f64FromBits(d.ts_bits);
      e.dur = f64FromBits(d.dur_bits);
      e.value = f64FromBits(d.value_bits);
      e.wall_ns = d.wall;
      const auto table = static_cast<std::uint32_t>(state.strings.size());
      if (e.category >= table || e.name >= table) {
        const std::uint32_t bad = e.category >= table ? e.category : e.name;
        throw BinlogError(
            BinlogErrorKind::BadStringRef,
            origin_ + ": event " + std::to_string(events_.size()) +
                " references string id " + std::to_string(bad) +
                " but only " + std::to_string(table) +
                " string(s) are defined for shard " + std::to_string(shard) +
                " at this point");
      }
      coverEvent(d, e.ts, e.dur);
      events_.push_back(e);
      seqs_.push_back(state.seq++);
    }
    p.requireDrained();
    entry.event_count = count;
    entry.t_min = d.t_min;
    entry.t_max = d.t_max;
  }

  void decodeIndex(const char* payload, std::uint64_t len) {
    if (index_seen_) {
      throw BinlogError(BinlogErrorKind::BadIndex,
                        origin_ + ": duplicate index chunk");
    }
    index_seen_ = true;
    if (len < 8) {
      throw BinlogError(BinlogErrorKind::BadIndex,
                        origin_ + ": index chunk payload of " +
                            std::to_string(len) +
                            " byte(s) is shorter than its 8-byte header");
    }
    const std::uint32_t entry_count = readU32(payload);
    declared_shard_count_ = readU32(payload + 4);
    if (len != 8 + std::uint64_t{kBinlogIndexEntryBytes} * entry_count) {
      throw BinlogError(
          BinlogErrorKind::BadIndex,
          origin_ + ": index chunk declares " + std::to_string(entry_count) +
              " index entries but the payload is " + std::to_string(len) +
              " byte(s)");
    }
    declared_index_.reserve(entry_count);
    for (std::uint32_t i = 0; i < entry_count; ++i) {
      const char* r = payload + 8 + kBinlogIndexEntryBytes * i;
      BinlogIndexEntry e;
      e.kind = readU32(r);
      e.shard = readU32(r + 4);
      checkShard(e.shard, "index entry");
      e.offset = readU64(r + 8);
      e.payload_len = readU64(r + 16);
      e.event_count = readU64(r + 24);
      e.t_min = readF64(r + 32);
      e.t_max = readF64(r + 40);
      declared_index_.push_back(e);
    }
    if (strict_) crossCheckIndex();
  }

  void crossCheckIndex() const {
    if (declared_index_.size() != observed_.size()) {
      throw BinlogError(BinlogErrorKind::BadIndex,
                        origin_ + ": index chunk lists " +
                            std::to_string(declared_index_.size()) +
                            " chunk(s) but " +
                            std::to_string(observed_.size()) +
                            " were decoded before it");
    }
    for (std::size_t i = 0; i < declared_index_.size(); ++i) {
      const BinlogIndexEntry& a = declared_index_[i];
      const BinlogIndexEntry& b = observed_[i];
      auto bad = [this, i](const std::string& what) {
        throw BinlogError(BinlogErrorKind::BadIndex,
                          origin_ + ": index entry " + std::to_string(i) +
                              " " + what);
      };
      if (a.kind != b.kind) {
        bad("declares chunk kind " + std::to_string(a.kind) +
            " but the chunk has kind " + std::to_string(b.kind));
      }
      if (a.shard != b.shard) {
        bad("declares shard " + std::to_string(a.shard) +
            " but the chunk is tagged shard " + std::to_string(b.shard));
      }
      if (a.offset != b.offset) {
        bad("declares file offset " + std::to_string(a.offset) +
            " but the chunk is at offset " + std::to_string(b.offset));
      }
      if (a.payload_len != b.payload_len) {
        bad("declares payload length " + std::to_string(a.payload_len) +
            " but the chunk's is " + std::to_string(b.payload_len));
      }
      if (a.event_count != b.event_count) {
        bad("declares " + std::to_string(a.event_count) +
            " event(s) but the chunk holds " + std::to_string(b.event_count));
      }
      if (f64Bits(a.t_min) != f64Bits(b.t_min) ||
          f64Bits(a.t_max) != f64Bits(b.t_max)) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "declares time range [%.17g, %.17g] but the chunk "
                      "covers [%.17g, %.17g]",
                      a.t_min, a.t_max, b.t_min, b.t_max);
        bad(buf);
      }
    }
  }

  void decodeFooter(const char* payload, std::uint64_t len) {
    const std::uint64_t want_len =
        version_ >= 2 ? kBinlogFooterBytes : kBinlogFooterBytesV1;
    if (len != want_len) {
      throw BinlogError(BinlogErrorKind::Malformed,
                        origin_ + ": footer chunk payload is " +
                            std::to_string(len) + " byte(s), expected " +
                            std::to_string(want_len));
    }
    const std::uint64_t event_count = readU64(payload);
    const std::uint64_t string_count = readU64(payload + 8);
    totals_.recorded = readU64(payload + 16);
    totals_.dropped = readU64(payload + 24);
    totals_.streamed = readU64(payload + 32);
    if (version_ >= 2) index_offset_ = readU64(payload + 40);
    if (!strict_) return;
    if (version_ >= 2 && !index_seen_) {
      throw BinlogError(BinlogErrorKind::BadIndex,
                        origin_ + ": footer arrived without an index chunk");
    }
    if (event_count != events_.size()) {
      throw BinlogError(BinlogErrorKind::Malformed,
                        origin_ + ": footer declares " +
                            std::to_string(event_count) + " event(s) but " +
                            std::to_string(events_.size()) +
                            " were decoded");
    }
    std::uint64_t total_strings = 0;
    for (const auto& [shard, state] : shards_) {
      total_strings += state.strings.size();
    }
    if (string_count != total_strings) {
      throw BinlogError(BinlogErrorKind::Malformed,
                        origin_ + ": footer declares " +
                            std::to_string(string_count) + " string(s) but " +
                            std::to_string(total_strings) +
                            " were decoded");
    }
  }

  std::string origin_;
  bool strict_;
  std::uint32_t version_ = kBinlogVersion;
  std::map<std::uint32_t, ShardState> shards_;
  std::vector<BinEvent> events_;  // category/name are shard-local ids here
  std::vector<std::uint64_t> seqs_;
  std::map<std::uint32_t, std::string> process_names_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> thread_names_;
  BinlogTotals totals_;
  std::vector<BinlogIndexEntry> declared_index_;
  std::vector<BinlogIndexEntry> observed_;
  std::uint32_t declared_shard_count_ = 0;
  std::uint64_t index_offset_ = 0;
  std::uint64_t chunks_ = 0;
  std::uint64_t events_chunks_ = 0;
  bool index_seen_ = false;
  bool footer_seen_ = false;
};

}  // namespace

BinaryTrace decodeBinaryTrace(const std::string& bytes,
                              const std::string& origin) {
  FileReader reader(bytes, origin);
  const char* magic = reader.take(sizeof(kBinlogMagic), "file magic");
  if (std::memcmp(magic, kBinlogMagic, sizeof(kBinlogMagic)) != 0) {
    throw BinlogError(BinlogErrorKind::BadMagic,
                      origin + ": not a binary trace file (bad magic)");
  }
  const std::uint32_t version = reader.u32("format version");
  if (version != kBinlogVersionV1 && version != kBinlogVersion) {
    throw BinlogError(
        BinlogErrorKind::BadVersion,
        origin + ": binary trace format version " + std::to_string(version) +
            " is not supported (this build reads versions " +
            std::to_string(kBinlogVersionV1) + " and " +
            std::to_string(kBinlogVersion) + ")");
  }
  ContainerDecoder decoder(origin, /*strict=*/true);
  decoder.setVersion(version);
  std::uint64_t trailer = kFnvOffset;
  trailer = fnvWordStep(trailer, readU64(bytes.data()));
  trailer = fnvWordStep(trailer, version);
  while (!decoder.footerSeen()) {
    if (reader.remaining() == 0) {
      throw BinlogError(BinlogErrorKind::MissingFooter,
                        origin + ": file ends after " +
                            std::to_string(reader.offset()) +
                            " byte(s) without a footer chunk");
    }
    const std::uint64_t chunk_offset = reader.offset();
    const std::uint32_t kind = reader.u32("chunk kind");
    const std::uint64_t payload_len = reader.u64("chunk payload length");
    const char* payload = reader.take(payload_len, "chunk payload");
    const std::uint64_t want = reader.u64("chunk checksum");
    const std::uint64_t got = binlogChecksum(payload, payload_len);
    if (got != want) {
      char buf[112];
      std::snprintf(buf, sizeof(buf),
                    ": chunk kind %u payload checksum mismatch "
                    "(stored 0x%016llx, computed 0x%016llx)",
                    static_cast<unsigned>(kind),
                    static_cast<unsigned long long>(want),
                    static_cast<unsigned long long>(got));
      throw BinlogError(BinlogErrorKind::ChunkChecksum, origin + buf);
    }
    trailer = fnvWordStep(trailer, kind);
    trailer = fnvWordStep(trailer, payload_len);
    trailer = fnvWordStep(trailer, want);
    decoder.consumeChunk(kind, payload, payload_len, chunk_offset);
  }
  const std::uint64_t want = reader.u64("file checksum");
  const std::uint64_t got = trailer;
  if (got != want) {
    char buf[112];
    std::snprintf(buf, sizeof(buf),
                  ": file checksum mismatch "
                  "(stored 0x%016llx, computed 0x%016llx)",
                  static_cast<unsigned long long>(want),
                  static_cast<unsigned long long>(got));
    throw BinlogError(BinlogErrorKind::FileChecksum, origin + buf);
  }
  if (reader.remaining() != 0) {
    throw BinlogError(BinlogErrorKind::Malformed,
                      origin + ": " + std::to_string(reader.remaining()) +
                          " trailing byte(s) after the file checksum");
  }
  return decoder.finalize();
}

BinaryTrace readBinaryTrace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw BinlogError(BinlogErrorKind::Io,
                      path + ": cannot open binary trace for reading");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw BinlogError(BinlogErrorKind::Io, path + ": binary trace read failed");
  }
  return decodeBinaryTrace(bytes, path);
}

// --- Windowed (index-seeking) reading ---------------------------------------

namespace {

/// Random-access byte source for the seeking reader: a file opened once or
/// an in-memory container image.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  virtual std::uint64_t size() = 0;
  /// Read exactly n bytes at `offset` (caller bounds-checks against size()).
  virtual void read(std::uint64_t offset, char* dst, std::size_t n) = 0;
  /// The whole container image (v1 fallback path).
  virtual std::string readAll() = 0;
};

class MemorySource final : public ByteSource {
 public:
  explicit MemorySource(const std::string& bytes) : bytes_(bytes) {}
  std::uint64_t size() override { return bytes_.size(); }
  void read(std::uint64_t offset, char* dst, std::size_t n) override {
    std::memcpy(dst, bytes_.data() + offset, n);
  }
  std::string readAll() override { return bytes_; }

 private:
  const std::string& bytes_;
};

class FileSource final : public ByteSource {
 public:
  FileSource(const std::string& path, std::ifstream in)
      : path_(path), in_(std::move(in)) {}
  std::uint64_t size() override {
    in_.clear();
    in_.seekg(0, std::ios::end);
    const auto end = in_.tellg();
    if (end < 0) {
      throw BinlogError(BinlogErrorKind::Io,
                        path_ + ": binary trace read failed");
    }
    return static_cast<std::uint64_t>(end);
  }
  void read(std::uint64_t offset, char* dst, std::size_t n) override {
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(offset));
    in_.read(dst, static_cast<std::streamsize>(n));
    if (!in_ || static_cast<std::size_t>(in_.gcount()) != n) {
      throw BinlogError(BinlogErrorKind::Io,
                        path_ + ": binary trace read failed");
    }
  }
  std::string readAll() override {
    in_.clear();
    in_.seekg(0);
    std::string bytes((std::istreambuf_iterator<char>(in_)),
                      std::istreambuf_iterator<char>());
    if (in_.bad()) {
      throw BinlogError(BinlogErrorKind::Io,
                        path_ + ": binary trace read failed");
    }
    return bytes;
  }

 private:
  std::string path_;
  std::ifstream in_;
};

/// Drop events outside the window; refresh the in-window count. The string
/// table is untouched (ids stay valid).
void applyWindowFilter(BinaryTrace& trace, const TraceWindow& window) {
  trace.events.erase(
      std::remove_if(trace.events.begin(), trace.events.end(),
                     [&window](const BinEvent& e) {
                       return !eventInWindow(e, window);
                     }),
      trace.events.end());
  trace.stats.events_in_window = trace.events.size();
}

/// Verify one chunk's stored checksum; same diagnostic as the strict path.
void requireChunkChecksum(const std::string& origin, std::uint32_t kind,
                          const char* payload, std::uint64_t len,
                          std::uint64_t want) {
  const std::uint64_t got = binlogChecksum(payload, len);
  if (got != want) {
    char buf[112];
    std::snprintf(buf, sizeof(buf),
                  ": chunk kind %u payload checksum mismatch "
                  "(stored 0x%016llx, computed 0x%016llx)",
                  static_cast<unsigned>(kind),
                  static_cast<unsigned long long>(want),
                  static_cast<unsigned long long>(got));
    throw BinlogError(BinlogErrorKind::ChunkChecksum, origin + buf);
  }
}

BinaryTrace windowedDecode(ByteSource& src, const std::string& origin,
                           const TraceWindow& window) {
  const std::uint64_t fsize = src.size();
  if (fsize < sizeof(kBinlogMagic) + 4) {
    throw BinlogError(BinlogErrorKind::Truncated,
                      origin + ": truncated trace: need " +
                          std::to_string(sizeof(kBinlogMagic) + 4) +
                          " byte(s) for the file header, only " +
                          std::to_string(fsize) + " in the file");
  }
  char header[sizeof(kBinlogMagic) + 4];
  src.read(0, header, sizeof(header));
  if (std::memcmp(header, kBinlogMagic, sizeof(kBinlogMagic)) != 0) {
    throw BinlogError(BinlogErrorKind::BadMagic,
                      origin + ": not a binary trace file (bad magic)");
  }
  const std::uint32_t version = readU32(header + sizeof(kBinlogMagic));
  if (version == kBinlogVersionV1) {
    // v1 has no index: full strict decode, then filter. used_index stays
    // false and the decode counters reflect the full pass.
    BinaryTrace trace = decodeBinaryTrace(src.readAll(), origin);
    applyWindowFilter(trace, window);
    return trace;
  }
  if (version != kBinlogVersion) {
    throw BinlogError(
        BinlogErrorKind::BadVersion,
        origin + ": binary trace format version " + std::to_string(version) +
            " is not supported (this build reads versions " +
            std::to_string(kBinlogVersionV1) + " and " +
            std::to_string(kBinlogVersion) + ")");
  }
  if (fsize < sizeof(header) + kBinlogTailBytes) {
    throw BinlogError(BinlogErrorKind::Truncated,
                      origin + ": truncated trace: need " +
                          std::to_string(kBinlogTailBytes) +
                          " byte(s) for the fixed v2 file tail, only " +
                          std::to_string(fsize - sizeof(header)) +
                          " past the header");
  }
  // The v2 footer chunk is the fixed-size file tail: seek it directly.
  char tail[kBinlogTailBytes];
  src.read(fsize - kBinlogTailBytes, tail, sizeof(tail));
  const std::uint32_t tail_kind = readU32(tail);
  if (tail_kind != binchunk::kFooter) {
    throw BinlogError(BinlogErrorKind::MissingFooter,
                      origin + ": no footer chunk at the fixed file tail "
                               "(still being written? try --follow)");
  }
  const std::uint64_t tail_len = readU64(tail + 4);
  if (tail_len != kBinlogFooterBytes) {
    throw BinlogError(BinlogErrorKind::Malformed,
                      origin + ": footer chunk payload is " +
                          std::to_string(tail_len) + " byte(s), expected " +
                          std::to_string(kBinlogFooterBytes));
  }
  requireChunkChecksum(origin, tail_kind, tail + 12, kBinlogFooterBytes,
                       readU64(tail + 12 + kBinlogFooterBytes));
  ContainerDecoder decoder(origin, /*strict=*/false);
  decoder.setVersion(version);
  decoder.consumeChunk(binchunk::kFooter, tail + 12, kBinlogFooterBytes,
                       fsize - kBinlogTailBytes);
  const std::uint64_t index_offset = decoder.indexOffset();
  if (index_offset < sizeof(header) ||
      index_offset + 12 + 8 > fsize - kBinlogTailBytes + 12) {
    throw BinlogError(BinlogErrorKind::BadIndex,
                      origin + ": footer index offset " +
                          std::to_string(index_offset) +
                          " lies outside the file");
  }
  char ihdr[12];
  src.read(index_offset, ihdr, sizeof(ihdr));
  const std::uint32_t ikind = readU32(ihdr);
  if (ikind != binchunk::kIndex) {
    throw BinlogError(
        BinlogErrorKind::BadIndex,
        origin + ": footer index offset does not point at an index chunk");
  }
  const std::uint64_t ilen = readU64(ihdr + 4);
  if (ilen > fsize || index_offset + 12 + ilen + 8 > fsize) {
    throw BinlogError(BinlogErrorKind::BadIndex,
                      origin + ": index chunk at offset " +
                          std::to_string(index_offset) +
                          " runs past the end of the file");
  }
  std::string ibuf(static_cast<std::size_t>(ilen) + 8, '\0');
  src.read(index_offset + 12, ibuf.data(), ibuf.size());
  requireChunkChecksum(origin, ikind, ibuf.data(), ilen, readU64(ibuf.data() + ilen));
  decoder.consumeChunk(binchunk::kIndex, ibuf.data(), ilen, index_offset);

  BinlogReadStats stats;
  stats.used_index = true;
  // index + footer themselves, plus every chunk the index lists.
  stats.chunks_total = decoder.declaredIndex().size() + 2;
  // Decode in file-offset order (string definitions precede their uses);
  // events chunks whose time cover misses the window are skipped unread.
  std::vector<BinlogIndexEntry> selected = decoder.declaredIndex();
  std::sort(selected.begin(), selected.end(),
            [](const BinlogIndexEntry& a, const BinlogIndexEntry& b) {
              return a.offset < b.offset;
            });
  std::string chunk;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const BinlogIndexEntry& entry = selected[i];
    const bool is_events = entry.kind == binchunk::kEvents;
    // NaN covers compare false on both sides and are decoded (never
    // silently dropped).
    const bool outside =
        entry.t_max < window.from || entry.t_min > window.to;
    if (is_events && outside) {
      ++stats.events_chunks_skipped;
      stats.payload_bytes_skipped += entry.payload_len;
      continue;
    }
    if (entry.offset < sizeof(header) || entry.payload_len > fsize ||
        entry.offset + 12 + entry.payload_len + 8 > fsize) {
      throw BinlogError(BinlogErrorKind::BadIndex,
                        origin + ": index entry " + std::to_string(i) +
                            " lies outside the file");
    }
    char chdr[12];
    src.read(entry.offset, chdr, sizeof(chdr));
    const std::uint32_t kind = readU32(chdr);
    const std::uint64_t len = readU64(chdr + 4);
    if (kind != entry.kind) {
      throw BinlogError(BinlogErrorKind::BadIndex,
                        origin + ": index entry " + std::to_string(i) +
                            " declares chunk kind " +
                            std::to_string(entry.kind) +
                            " but the file has kind " + std::to_string(kind) +
                            " at offset " + std::to_string(entry.offset));
    }
    if (len != entry.payload_len) {
      throw BinlogError(BinlogErrorKind::BadIndex,
                        origin + ": index entry " + std::to_string(i) +
                            " declares payload length " +
                            std::to_string(entry.payload_len) +
                            " but the chunk at offset " +
                            std::to_string(entry.offset) + " declares " +
                            std::to_string(len));
    }
    chunk.resize(static_cast<std::size_t>(len) + 8);
    src.read(entry.offset + 12, chunk.data(), chunk.size());
    requireChunkChecksum(origin, kind, chunk.data(), len,
                         readU64(chunk.data() + len));
    const BinlogIndexEntry observed =
        decoder.consumeChunk(kind, chunk.data(), len, entry.offset);
    if (is_events) {
      ++stats.events_chunks_decoded;
      auto bad = [&origin, i](const std::string& what) {
        throw BinlogError(BinlogErrorKind::BadIndex,
                          origin + ": index entry " + std::to_string(i) +
                              " " + what);
      };
      if (observed.shard != entry.shard) {
        bad("declares shard " + std::to_string(entry.shard) +
            " but the chunk is tagged shard " +
            std::to_string(observed.shard));
      }
      if (observed.event_count != entry.event_count) {
        bad("declares " + std::to_string(entry.event_count) +
            " event(s) but the chunk holds " +
            std::to_string(observed.event_count));
      }
      if (f64Bits(observed.t_min) != f64Bits(entry.t_min) ||
          f64Bits(observed.t_max) != f64Bits(entry.t_max)) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "declares time range [%.17g, %.17g] but the chunk "
                      "covers [%.17g, %.17g]",
                      entry.t_min, entry.t_max, observed.t_min,
                      observed.t_max);
        bad(buf);
      }
    }
  }
  BinaryTrace trace = decoder.finalize();
  stats.events_decoded = trace.stats.events_decoded;
  trace.stats = stats;
  applyWindowFilter(trace, window);
  return trace;
}

}  // namespace

BinaryTrace decodeBinaryTraceWindow(const std::string& bytes,
                                    const std::string& origin,
                                    const TraceWindow& window) {
  MemorySource src(bytes);
  return windowedDecode(src, origin, window);
}

BinaryTrace readBinaryTraceWindow(const std::string& path,
                                  const TraceWindow& window) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw BinlogError(BinlogErrorKind::Io,
                      path + ": cannot open binary trace for reading");
  }
  FileSource src(path, std::move(in));
  return windowedDecode(src, path, window);
}

// --- Container emitter ------------------------------------------------------

namespace detail {

/// The shared chunk-emitting backend: file/memory staging, trailer digest,
/// and the v2 index ledger. BinaryTraceWriter owns one; ShardedBinaryWriter
/// funnels every shard's chunks through one.
struct BinlogContainer {
  std::uint32_t version;
  std::size_t flush_bytes;
  std::ofstream file;
  bool file_mode = false;
  bool file_ok = true;
  bool finished = false;
  std::string* out = nullptr;
  std::string staged;
  std::uint64_t trailer_fnv = 0;
  std::uint64_t bytes_written = 0;
  std::vector<BinlogIndexEntry> index;

  BinlogContainer(const std::string& path, std::uint32_t ver,
                  std::size_t flush)
      : version(ver),
        flush_bytes(flush),
        file(path, std::ios::binary | std::ios::trunc),
        file_mode(true) {
    file_ok = static_cast<bool>(file);
    staged.reserve(flush_bytes + (flush_bytes >> 2));
    writeHeader();
  }

  BinlogContainer(std::string* o, std::uint32_t ver, std::size_t flush)
      : version(ver), flush_bytes(flush), out(o) {
    writeHeader();
  }

  bool good() const { return !file_mode || file_ok; }

  void writeHeader() {
    char header[sizeof(kBinlogMagic) + 4];
    std::memcpy(header, kBinlogMagic, sizeof(kBinlogMagic));
    putU32(header + sizeof(kBinlogMagic), version);
    emitRaw(header, sizeof(header));
    trailer_fnv = kFnvOffset;
    trailer_fnv = fnvWordStep(trailer_fnv, readU64(header));
    trailer_fnv = fnvWordStep(trailer_fnv, version);
  }

  void emitRaw(const char* data, std::size_t size) {
    bytes_written += size;
    if (file_mode) {
      staged.append(data, size);
    } else if (out != nullptr) {
      out->append(data, size);
    }
  }

  /// Emit one complete chunk. `indexed` chunks get a ledger entry (v2
  /// only) carrying the shard tag, event count and time cover that will be
  /// pinned into the index chunk at finish().
  void emitChunk(std::uint32_t kind, const char* data, std::size_t size,
                 std::uint64_t checksum, std::uint32_t shard,
                 std::uint64_t event_count, double t_min, double t_max,
                 bool indexed) {
    const std::uint64_t offset = bytes_written;
    char header[12];
    putU32(header, kind);
    putU64(header + 4, size);
    emitRaw(header, sizeof(header));
    emitRaw(data, size);
    char sum[8];
    putU64(sum, checksum);
    emitRaw(sum, sizeof(sum));
    trailer_fnv = fnvWordStep(trailer_fnv, kind);
    trailer_fnv = fnvWordStep(trailer_fnv, size);
    trailer_fnv = fnvWordStep(trailer_fnv, checksum);
    if (version >= 2 && indexed) {
      BinlogIndexEntry e;
      e.kind = kind;
      e.shard = shard;
      e.offset = offset;
      e.payload_len = size;
      e.event_count = event_count;
      e.t_min = t_min;
      e.t_max = t_max;
      index.push_back(e);
    }
  }

  void emitChunk(std::uint32_t kind, const std::string& payload,
                 std::uint32_t shard, bool indexed) {
    emitChunk(kind, payload.data(), payload.size(), binlogChecksum(payload),
              shard, 0, 0.0, 0.0, indexed);
  }

  void flushFile(bool force) {
    if (!file_mode) return;
    if (!file_ok) {
      staged.clear();
      return;
    }
    if (!force && staged.size() < flush_bytes) return;
    if (!staged.empty()) {
      file.write(staged.data(),
                 static_cast<std::streamsize>(staged.size()));
      // Push whole chunks to the OS now: staged always ends at a chunk
      // boundary, so a --follow reader tailing the file sees a clean
      // prefix of complete chunks rather than a torn one.
      file.flush();
      if (!file) file_ok = false;
      staged.clear();
    }
  }

  /// Index (v2) + footer + trailer digest; closes the file. Idempotent.
  bool finish(std::uint64_t event_count, std::uint64_t string_count,
              const BinlogTotals& totals, std::uint32_t shard_count) {
    if (finished) return good();
    if (version >= 2) {
      std::string ip;
      appendU32(ip, static_cast<std::uint32_t>(index.size()));
      appendU32(ip, shard_count);
      for (const BinlogIndexEntry& e : index) {
        char buf[kBinlogIndexEntryBytes];
        putU32(buf, e.kind);
        putU32(buf + 4, e.shard);
        putU64(buf + 8, e.offset);
        putU64(buf + 16, e.payload_len);
        putU64(buf + 24, e.event_count);
        putF64(buf + 32, e.t_min);
        putF64(buf + 40, e.t_max);
        ip.append(buf, sizeof(buf));
      }
      const std::uint64_t index_offset = bytes_written;
      emitChunk(binchunk::kIndex, ip, 0, /*indexed=*/false);
      std::string footer;
      appendU64(footer, event_count);
      appendU64(footer, string_count);
      appendU64(footer, totals.recorded);
      appendU64(footer, totals.dropped);
      appendU64(footer, totals.streamed);
      appendU64(footer, index_offset);
      emitChunk(binchunk::kFooter, footer, 0, /*indexed=*/false);
    } else {
      std::string footer;
      appendU64(footer, event_count);
      appendU64(footer, string_count);
      appendU64(footer, totals.recorded);
      appendU64(footer, totals.dropped);
      appendU64(footer, totals.streamed);
      emitChunk(binchunk::kFooter, footer, 0, /*indexed=*/false);
    }
    // The trailer digest already covers the header and every chunk summary
    // (folded as each chunk was emitted); it is not part of its own hash.
    char tail[8];
    putU64(tail, trailer_fnv);
    bytes_written += sizeof(tail);
    if (file_mode) {
      staged.append(tail, sizeof(tail));
      flushFile(true);
      file.close();
      if (!file) file_ok = false;
    } else if (out != nullptr) {
      out->append(tail, sizeof(tail));
    }
    finished = true;
    return good();
  }
};

}  // namespace detail

// --- Writer -----------------------------------------------------------------

BinaryTraceWriter::BinaryTraceWriter(TraceSink& sink, const std::string& path,
                                     BinaryTraceWriterConfig config)
    : sink_(sink), config_(config) {
  config_.version =
      config_.version == kBinlogVersionV1 ? kBinlogVersionV1 : kBinlogVersion;
  container_ = std::make_unique<detail::BinlogContainer>(path, config_.version,
                                                         config_.flush_bytes);
  initLocked();
  sink_.setDrainHook(&BinaryTraceWriter::drainThunk, this,
                     config_.occupancy_watermark, config_.time_watermark);
}

BinaryTraceWriter::BinaryTraceWriter(TraceSink& sink, std::string* out,
                                     BinaryTraceWriterConfig config)
    : sink_(sink), config_(config) {
  config_.version =
      config_.version == kBinlogVersionV1 ? kBinlogVersionV1 : kBinlogVersion;
  container_ = std::make_unique<detail::BinlogContainer>(out, config_.version,
                                                         config_.flush_bytes);
  initLocked();
  sink_.setDrainHook(&BinaryTraceWriter::drainThunk, this,
                     config_.occupancy_watermark, config_.time_watermark);
}

BinaryTraceWriter::~BinaryTraceWriter() { close(); }

void BinaryTraceWriter::initLocked() {
  resetChunkLanesLocked();
  growPendingLocked(config_.flush_bytes + kBinlogV2MaxRecordBytes + 8);
  resetPendingLocked();
  pending_strings_.assign(config_.version >= 2 ? 8 : 4, '\0');
}

void BinaryTraceWriter::drainThunk(void* ctx) {
  static_cast<BinaryTraceWriter*>(ctx)->drain();
}

void BinaryTraceWriter::segmentThunk(void* ctx, const TraceEvent* events,
                                     std::size_t count) {
  // Runs under the *sink* lock from drainSegments; the writer lock is
  // already held by drain()/close().
  static_cast<BinaryTraceWriter*>(ctx)->appendLocked(events, count);
}

void BinaryTraceWriter::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  if (sink_.drainSegments(&BinaryTraceWriter::segmentThunk, this) > 0) {
    ++batches_;
    if (pending_size_ >= config_.flush_bytes) {
      sealEventsChunkLocked();
    }
  }
}

void BinaryTraceWriter::append(const TraceEvent* events, std::size_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  appendLocked(events, count);
  if (pending_size_ >= config_.flush_bytes) {
    sealEventsChunkLocked();
  }
}

bool BinaryTraceWriter::probeSlot(const char* text,
                                  std::uint32_t& id) const noexcept {
  const auto key = reinterpret_cast<std::uintptr_t>(text);
  std::size_t i = static_cast<std::size_t>(
                      (static_cast<std::uint64_t>(key) *
                       0x9e3779b97f4a7c15ULL) >> 32) &
                  (kInternSlots - 1);
  for (std::size_t probe = 0; probe < kInternSlots; ++probe) {
    const InternSlot& slot = intern_slots_[i];
    if (slot.ptr == text) {
      id = slot.id;
      return true;
    }
    if (slot.ptr == nullptr) return false;
    i = (i + 1) & (kInternSlots - 1);
  }
  return false;
}

std::uint32_t BinaryTraceWriter::internLocked(const char* text) {
  const auto key = reinterpret_cast<std::uintptr_t>(text);
  std::size_t i = static_cast<std::size_t>(
                      (static_cast<std::uint64_t>(key) *
                       0x9e3779b97f4a7c15ULL) >> 32) &
                  (kInternSlots - 1);
  InternSlot* claim = nullptr;
  for (std::size_t probe = 0; probe < kInternSlots; ++probe) {
    InternSlot& slot = intern_slots_[i];
    if (slot.ptr == text) return slot.id;
    if (slot.ptr == nullptr) {
      claim = &slot;
      break;
    }
    i = (i + 1) & (kInternSlots - 1);
  }
  // Slow path: resolve by content so two distinct literals with equal text
  // share one id (ids then depend only on the event stream, not on linker
  // layout).
  std::string content(text);
  auto [it, inserted] = intern_by_content_.try_emplace(content, 0);
  if (inserted) {
    it->second = next_string_id_++;
    appendU32(pending_strings_, static_cast<std::uint32_t>(content.size()));
    pending_strings_ += content;
    ++pending_string_count_;
  }
  if (claim != nullptr) {
    claim->ptr = text;
    claim->id = it->second;
  }
  return it->second;
}

void BinaryTraceWriter::resetChunkLanesLocked() {
  for (unsigned i = 0; i < 4; ++i) chunk_lanes_[i] = fnvLaneSeed(i);
}

void BinaryTraceWriter::resetPendingLocked() {
  if (config_.version >= 2) {
    // Reserve the u32 shard + u32 count chunk prologue; patched at seal.
    std::memset(pending_base_, 0, 8);
    pending_size_ = 8;
  } else {
    pending_size_ = 0;
  }
  delta_ = detail::BinlogDeltaState{};
}

void BinaryTraceWriter::growPendingLocked(std::size_t need) {
  std::size_t cap = pending_cap_ == 0 ? (std::size_t{1} << 16) : pending_cap_;
  while (cap < need) cap *= 2;
  // Over-allocate so the record area can start on a 64-byte boundary:
  // v1 records are 64 bytes and pending_size_ only ever grows by whole
  // records, so every record lands 32-byte aligned -- what the x86 fast
  // path's non-temporal stores require.
  auto grown = std::make_unique<char[]>(cap + 63);
  char* const base = reinterpret_cast<char*>(
      (reinterpret_cast<std::uintptr_t>(grown.get()) + 63) &
      ~static_cast<std::uintptr_t>(63));
  if (pending_size_ > 0) {
    std::memcpy(base, pending_base_, pending_size_);
  }
  pending_data_ = std::move(grown);
  pending_base_ = base;
  pending_cap_ = cap;
}

#if IOBTS_BINLOG_X86
__attribute__((target("avx2"))) std::size_t BinaryTraceWriter::encodeRunAvx2(
    const InternSlot* slots, const TraceEvent*& ev_io, std::size_t count,
    char*& dst_io, std::uint64_t* lanes_io) {
  const TraceEvent* IOBTS_RESTRICT ev = ev_io;
  char* IOBTS_RESTRICT dst = dst_io;
  // All four checksum lanes ride in one 256-bit register; rotl1 across
  // them is two shifts and an or.
  __m256i lanes =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lanes_io));
  const auto probe = [slots](const char* text, std::uint32_t& id) noexcept {
    const auto key = reinterpret_cast<std::uintptr_t>(text);
    std::size_t i = static_cast<std::size_t>(
                        (static_cast<std::uint64_t>(key) *
                         0x9e3779b97f4a7c15ULL) >> 32) &
                    (kInternSlots - 1);
    for (std::size_t p = 0; p < kInternSlots; ++p) {
      const InternSlot& slot = slots[i];
      if (slot.ptr == text) {
        id = slot.id;
        return true;
      }
      if (slot.ptr == nullptr) return false;
      i = (i + 1) & (kInternSlots - 1);
    }
    return false;
  };
  // Consecutive events nearly always share a category (a component's spans
  // and counters carry the same one), so one register-resident cache entry
  // turns most category lookups into a pointer compare. Names typically
  // *alternate* -- a span name and a counter name per dispatch -- which a
  // single entry never catches, so names get two entries.
  const char* cached_category = nullptr;
  std::uint32_t cached_category_id = 0;
  const char* cached_name0 = nullptr;
  const char* cached_name1 = nullptr;
  std::uint32_t cached_name0_id = 0;
  std::uint32_t cached_name1_id = 0;
  std::size_t n = 0;
  for (; n < count; ++n, ++ev) {
    std::uint32_t name_id;
    if (ev->category != cached_category) {
      if (!probe(ev->category, cached_category_id)) break;
      cached_category = ev->category;
    }
    if (ev->name == cached_name0) {
      name_id = cached_name0_id;
    } else if (ev->name == cached_name1) {
      name_id = cached_name1_id;
    } else {
      if (!probe(ev->name, name_id)) break;
      cached_name1 = cached_name0;
      cached_name1_id = cached_name0_id;
      cached_name0 = ev->name;
      cached_name0_id = name_id;
    }
    const std::uint64_t ids =
        cached_category_id | (static_cast<std::uint64_t>(name_id) << 32);
    static_assert(offsetof(TraceEvent, category) == 56);
    const char* IOBTS_RESTRICT src = reinterpret_cast<const char*>(&ev->ts);
    // Record words 0..3 / 4..7: the low half is verbatim event bytes; the
    // high half swaps the string pointers (word 7) for the interned ids
    // via a blend (cheaper than a cross-lane insert).
    const __m256i lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src));
    const __m256i hi = _mm256_blend_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 32)),
        _mm256_set1_epi64x(static_cast<long long>(ids)), 0xC0);
    // Non-temporal stores: the record area is written once and not read
    // again until the chunk seals (the checksum folds from the source
    // event), so bypassing the cache skips the read-for-ownership traffic
    // a regular store would add per line -- on a bandwidth-bound encode
    // that is the difference that puts the binary sink ahead of the JSON
    // streamer. dst is 32-byte aligned by construction (see
    // growPendingLocked).
    _mm256_stream_si256(reinterpret_cast<__m256i*>(dst), lo);
    _mm256_stream_si256(reinterpret_cast<__m256i*>(dst + 32), hi);
    // Two generic checksum rounds (word j -> lane j % 4); rotl1 across
    // all four lanes is two shifts and an or.
    lanes = _mm256_xor_si256(
        _mm256_or_si256(_mm256_slli_epi64(lanes, 1),
                        _mm256_srli_epi64(lanes, 63)),
        lo);
    lanes = _mm256_xor_si256(
        _mm256_or_si256(_mm256_slli_epi64(lanes, 1),
                        _mm256_srli_epi64(lanes, 63)),
        hi);
    dst += kBinlogEventBytes;
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes_io), lanes);
  // Order the streaming stores before anything the caller publishes.
  _mm_sfence();
  ev_io = ev;
  dst_io = dst;
  return n;
}
#endif  // IOBTS_BINLOG_X86

void BinaryTraceWriter::appendLocked(const TraceEvent* events,
                                     std::size_t count) {
  if (config_.version >= 2) {
    appendV2Locked(events, count);
  } else {
    appendV1Locked(events, count);
  }
}

void BinaryTraceWriter::appendV1Locked(const TraceEvent* events,
                                       std::size_t count) {
  // One capacity check covers the whole batch (the ring hands us whole
  // segments). The inner loop is deliberately call-free: string ids come
  // from an inline probe of the pointer-keyed slot table, and an intern
  // *miss* breaks out to the cold path below (which registers the string
  // and encodes that one record) before the tight loop re-enters. With no
  // call inside it, the checksum lanes live in vector registers for the
  // whole run instead of spilling around a potential internLocked() call.
  // This loop is the reason the binary sink undercuts the JSON streamer's
  // copy-out in BENCH_obs_overhead.json.
  const std::size_t need = pending_size_ + count * kBinlogEventBytes;
  if (need > pending_cap_) growPendingLocked(need);
  char* dst = pending_base_ + pending_size_;
  const TraceEvent* ev = events;
  std::uint64_t lanes[4];
  for (unsigned w = 0; w < 4; ++w) lanes[w] = chunk_lanes_[w];
  std::size_t n = 0;
  while (n < count) {
#if IOBTS_BINLOG_X86
    if (use_avx2_) {
      n += encodeRunAvx2(intern_slots_, ev, count - n, dst, lanes);
    } else
#endif
    for (; n < count; ++n, ++ev) {
      std::uint32_t category_id;
      std::uint32_t name_id;
      if (!probeSlot(ev->category, category_id) ||
          !probeSlot(ev->name, name_id)) {
        break;
      }
      const std::uint64_t ids =
          category_id | (static_cast<std::uint64_t>(name_id) << 32);
      if constexpr (kHostLittleEndian) {
        // TraceEvent was laid out for this: ts through flow (with the
        // explicit zero padding) is record words 0..6 byte for byte, so
        // the translation is one bulk copy plus the one word that actually
        // changes representation -- the interned ids replacing the string
        // pointers. The checksum lanes fold from the *source* event (and
        // the ids register), never from dst: reading dst 8 bytes at a time
        // right after the wide bulk-copy stores would stall on
        // store-to-load forwarding every record.
        static_assert(offsetof(TraceEvent, category) == 56);
        const char* IOBTS_RESTRICT src =
            reinterpret_cast<const char*>(&ev->ts);
        std::memcpy(dst, src, 56);
        putU64(dst + 56, ids);
        for (unsigned w = 0; w < 3; ++w) {
          lanes[w] = rotl1(rotl1(lanes[w]) ^ readU64(src + 8 * w)) ^
                     readU64(src + 8 * (w + 4));
        }
        lanes[3] = rotl1(rotl1(lanes[3]) ^ readU64(src + 24)) ^ ids;
      } else {
        putF64(dst, ev->ts);
        putF64(dst + 8, ev->dur);
        putU32(dst + 16, ev->pid);
        putU32(dst + 20, ev->tid);
        putU32(dst + 24, static_cast<std::uint8_t>(ev->phase));
        putU32(dst + 28, 0);
        putF64(dst + 32, ev->value);
        putU64(dst + 40, ev->wall_ns);
        putU64(dst + 48, ev->flow);
        putU64(dst + 56, ids);
        for (unsigned w = 0; w < 4; ++w) {
          lanes[w] = rotl1(rotl1(lanes[w]) ^ readU64(dst + 8 * w)) ^
                     readU64(dst + 8 * (w + 4));
        }
      }
      dst += kBinlogEventBytes;
    }
    if (n >= count) break;
    // Cold path: first sighting of a string pointer. internLocked claims a
    // probe slot for it, so the tight loop resumes hitting.
    const std::uint32_t category_id = internLocked(ev->category);
    const std::uint32_t name_id = internLocked(ev->name);
    const std::uint64_t ids =
        category_id | (static_cast<std::uint64_t>(name_id) << 32);
    if constexpr (kHostLittleEndian) {
      const char* src = reinterpret_cast<const char*>(&ev->ts);
      std::memcpy(dst, src, 56);
      putU64(dst + 56, ids);
      for (unsigned w = 0; w < 3; ++w) {
        lanes[w] = rotl1(rotl1(lanes[w]) ^ readU64(src + 8 * w)) ^
                   readU64(src + 8 * (w + 4));
      }
      lanes[3] = rotl1(rotl1(lanes[3]) ^ readU64(src + 24)) ^ ids;
    } else {
      putF64(dst, ev->ts);
      putF64(dst + 8, ev->dur);
      putU32(dst + 16, ev->pid);
      putU32(dst + 20, ev->tid);
      putU32(dst + 24, static_cast<std::uint8_t>(ev->phase));
      putU32(dst + 28, 0);
      putF64(dst + 32, ev->value);
      putU64(dst + 40, ev->wall_ns);
      putU64(dst + 48, ev->flow);
      putU64(dst + 56, ids);
      for (unsigned w = 0; w < 4; ++w) {
        lanes[w] = rotl1(rotl1(lanes[w]) ^ readU64(dst + 8 * w)) ^
                   readU64(dst + 8 * (w + 4));
      }
    }
    dst += kBinlogEventBytes;
    ++n;
    ++ev;
  }
  for (unsigned w = 0; w < 4; ++w) chunk_lanes_[w] = lanes[w];
  pending_size_ = need;
  events_written_ += count;
}

void BinaryTraceWriter::appendV2Locked(const TraceEvent* events,
                                       std::size_t count) {
  // Seal inside the loop, not once per drain: a drain can deliver far more
  // than flush_bytes at once (the ring watermark, not the chunk size,
  // decides drain cadence), and bounded chunks are what give the footer
  // index time-local entries worth seeking by. The seal point is a pure
  // function of the encoded byte stream, so chunk boundaries stay
  // deterministic. initLocked() sized the buffer past flush_bytes + one
  // max record, so the grow check almost never fires.
  for (std::size_t i = 0; i < count; ++i) {
    const TraceEvent& e = events[i];
    std::uint32_t category_id;
    std::uint32_t name_id;
    if (!probeSlot(e.category, category_id)) {
      category_id = internLocked(e.category);
    }
    if (!probeSlot(e.name, name_id)) {
      name_id = internLocked(e.name);
    }
    if (pending_size_ + kBinlogV2MaxRecordBytes > pending_cap_) {
      growPendingLocked(pending_size_ + kBinlogV2MaxRecordBytes);
    }
    char* dst =
        encodeDeltaRecord(pending_base_ + pending_size_, e, category_id,
                          name_id, delta_);
    pending_size_ = static_cast<std::size_t>(dst - pending_base_);
    if (pending_size_ >= config_.flush_bytes) {
      sealEventsChunkLocked();
    }
  }
  events_written_ += count;
}

void BinaryTraceWriter::sealEventsChunkLocked() {
  if (config_.version >= 2) {
    if (pending_string_count_ > 0) {
      putU32(pending_strings_.data(), config_.shard);
      putU32(pending_strings_.data() + 4, pending_string_count_);
      container_->emitChunk(binchunk::kStrings, pending_strings_,
                            config_.shard, /*indexed=*/true);
      pending_strings_.assign(8, '\0');
      pending_string_count_ = 0;
    }
    if (delta_.count > 0) {
      putU32(pending_base_, config_.shard);
      putU32(pending_base_ + 4, static_cast<std::uint32_t>(delta_.count));
      const std::uint64_t sum = binlogChecksum(pending_base_, pending_size_);
      container_->emitChunk(binchunk::kEvents, pending_base_, pending_size_,
                            sum, config_.shard, delta_.count, delta_.t_min,
                            delta_.t_max, /*indexed=*/true);
      resetPendingLocked();
    }
  } else {
    if (pending_string_count_ > 0) {
      putU32(pending_strings_.data(), pending_string_count_);
      container_->emitChunk(binchunk::kStrings, pending_strings_, 0,
                            /*indexed=*/false);
      pending_strings_.assign(4, '\0');
      pending_string_count_ = 0;
    }
    if (pending_size_ > 0) {
      // Finish the incrementally folded lanes exactly the way
      // binlogChecksum would -- the seal never re-reads the payload.
      std::uint64_t sum = kFnvOffset;
      for (unsigned w = 0; w < 4; ++w) sum = fnvWordStep(sum, chunk_lanes_[w]);
      sum = fnvWordStep(sum, pending_size_);
      container_->emitChunk(binchunk::kEvents, pending_base_, pending_size_,
                            sum, 0, pending_size_ / kBinlogEventBytes, 0.0,
                            0.0, /*indexed=*/false);
      pending_size_ = 0;
      resetChunkLanesLocked();
    }
  }
  container_->flushFile(false);
}

bool BinaryTraceWriter::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return container_->good();
  sink_.clearDrainHook();
  if (sink_.drainSegments(&BinaryTraceWriter::segmentThunk, this) > 0) {
    ++batches_;
  }
  sealEventsChunkLocked();
  // Meta chunk last: every track name registered during the run is known by
  // now (mirrors the streamer's metadata-at-close order).
  container_->emitChunk(binchunk::kMeta, buildMetaPayload(&sink_), 0,
                        /*indexed=*/true);
  const bool ok = container_->finish(
      events_written_, next_string_id_,
      BinlogTotals{sink_.recorded(), sink_.dropped(), sink_.streamed()},
      config_.shard + 1);
  closed_ = true;
  return ok;
}

bool BinaryTraceWriter::good() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return container_->good();
}

std::uint64_t BinaryTraceWriter::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_written_;
}

std::uint64_t BinaryTraceWriter::batches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batches_;
}

std::uint64_t BinaryTraceWriter::bytesWritten() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return container_->bytes_written;
}

// --- Sharded direct recording -----------------------------------------------

struct ShardedBinaryWriter::Impl {
  /// Per-shard encoder state: its own string table, open delta chunk and
  /// time cover. Chunks from different shards interleave freely in the
  /// file; the shard tag on every chunk lets the reader regroup them.
  struct ShardStream {
    Impl* owner = nullptr;
    std::uint32_t shard = 0;
    TraceSink* sink = nullptr;
    // Pointer-keyed caches in front of the content map (same unification
    // guarantee as BinaryTraceWriter's slot table, sized for the staging
    // sinks' narrower string population).
    const char* cache_ptr[2] = {nullptr, nullptr};
    std::uint32_t cache_id[2] = {0, 0};
    std::map<const char*, std::uint32_t> by_ptr;
    std::map<std::string, std::uint32_t> by_content;
    std::uint32_t next_id = 0;
    std::string pending = std::string(8, '\0');
    std::string pending_strings = std::string(8, '\0');
    std::uint32_t pending_string_count = 0;
    detail::BinlogDeltaState delta;
    std::uint64_t events = 0;
  };

  mutable std::mutex mutex;
  BinaryTraceWriterConfig config;
  detail::BinlogContainer container;
  std::map<std::uint32_t, std::unique_ptr<ShardStream>> streams;
  const TraceSink* name_source = nullptr;
  BinlogTotals totals;
  std::uint64_t events_total = 0;
  bool closed = false;

  Impl(const std::string& path, BinaryTraceWriterConfig cfg)
      : config(cfg), container(path, kBinlogVersion, cfg.flush_bytes) {
    config.version = kBinlogVersion;
  }
  Impl(std::string* out, BinaryTraceWriterConfig cfg)
      : config(cfg), container(out, kBinlogVersion, cfg.flush_bytes) {
    config.version = kBinlogVersion;
  }

  static void hookThunk(void* ctx) {
    ShardStream* s = static_cast<ShardStream*>(ctx);
    s->owner->drainStream(*s);
  }

  static void segmentThunk(void* ctx, const TraceEvent* events,
                           std::size_t count) {
    // Under the sink lock; the Impl mutex is already held by drainStream
    // or detachAllLocked.
    ShardStream* s = static_cast<ShardStream*>(ctx);
    s->owner->appendStream(*s, events, count);
  }

  void drainStream(ShardStream& s) {
    std::lock_guard<std::mutex> lock(mutex);
    if (closed || s.sink == nullptr) return;
    s.sink->drainSegments(&Impl::segmentThunk, &s);
    if (s.pending.size() >= config.flush_bytes) {
      sealStreamLocked(s);
      container.flushFile(false);
    }
  }

  std::uint32_t internStream(ShardStream& s, const char* text) {
    if (text == s.cache_ptr[0]) return s.cache_id[0];
    if (text == s.cache_ptr[1]) {
      std::swap(s.cache_ptr[0], s.cache_ptr[1]);
      std::swap(s.cache_id[0], s.cache_id[1]);
      return s.cache_id[0];
    }
    std::uint32_t id;
    auto it = s.by_ptr.find(text);
    if (it != s.by_ptr.end()) {
      id = it->second;
    } else {
      std::string content(text);
      auto [cit, inserted] = s.by_content.try_emplace(std::move(content), 0);
      if (inserted) {
        cit->second = s.next_id++;
        appendU32(s.pending_strings,
                  static_cast<std::uint32_t>(cit->first.size()));
        s.pending_strings += cit->first;
        ++s.pending_string_count;
      }
      id = cit->second;
      s.by_ptr.emplace(text, id);
    }
    s.cache_ptr[1] = s.cache_ptr[0];
    s.cache_id[1] = s.cache_id[0];
    s.cache_ptr[0] = text;
    s.cache_id[0] = id;
    return id;
  }

  void appendStream(ShardStream& s, const TraceEvent* events,
                    std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      const TraceEvent& e = events[i];
      const std::uint32_t category_id = internStream(s, e.category);
      const std::uint32_t name_id = internStream(s, e.name);
      char buf[kBinlogV2MaxRecordBytes];
      char* end = encodeDeltaRecord(buf, e, category_id, name_id, s.delta);
      s.pending.append(buf, static_cast<std::size_t>(end - buf));
      // Same mid-batch seal as the single-sink writer: chunk boundaries
      // depend only on this shard's byte stream, never on when workers
      // happened to drain, so they are thread-count-invariant.
      if (s.pending.size() >= config.flush_bytes) {
        sealStreamLocked(s);
      }
    }
    s.events += count;
    events_total += count;
  }

  void sealStreamLocked(ShardStream& s) {
    if (s.pending_string_count > 0) {
      putU32(s.pending_strings.data(), s.shard);
      putU32(s.pending_strings.data() + 4, s.pending_string_count);
      container.emitChunk(binchunk::kStrings, s.pending_strings, s.shard,
                          /*indexed=*/true);
      s.pending_strings.assign(8, '\0');
      s.pending_string_count = 0;
    }
    if (s.delta.count > 0) {
      putU32(s.pending.data(), s.shard);
      putU32(s.pending.data() + 4, static_cast<std::uint32_t>(s.delta.count));
      container.emitChunk(binchunk::kEvents, s.pending.data(),
                          s.pending.size(), binlogChecksum(s.pending),
                          s.shard, s.delta.count, s.delta.t_min, s.delta.t_max,
                          /*indexed=*/true);
      s.pending.assign(8, '\0');
      s.delta = detail::BinlogDeltaState{};
    }
  }

  void detachAllLocked() {
    for (auto& [shard, stream] : streams) {
      ShardStream& s = *stream;
      if (s.sink == nullptr) continue;
      s.sink->clearDrainHook();
      s.sink->drainSegments(&Impl::segmentThunk, &s);
      // Staging sinks are fresh per window generation, so their lifetime
      // counters sum without double counting.
      totals.recorded += s.sink->recorded();
      totals.dropped += s.sink->dropped();
      totals.streamed += s.sink->streamed();
      s.sink = nullptr;
    }
  }

  bool close() {
    std::lock_guard<std::mutex> lock(mutex);
    if (closed) return container.good();
    detachAllLocked();
    for (auto& [shard, stream] : streams) {
      sealStreamLocked(*stream);
    }
    container.emitChunk(binchunk::kMeta, buildMetaPayload(name_source), 0,
                        /*indexed=*/true);
    std::uint64_t event_count = 0;
    std::uint64_t string_count = 0;
    for (const auto& [shard, stream] : streams) {
      event_count += stream->events;
      string_count += stream->next_id;
    }
    const std::uint32_t shard_count =
        streams.empty() ? 1u : streams.rbegin()->first + 1u;
    const bool ok =
        container.finish(event_count, string_count, totals, shard_count);
    closed = true;
    return ok;
  }
};

ShardedBinaryWriter::ShardedBinaryWriter(const std::string& path,
                                         BinaryTraceWriterConfig config)
    : impl_(std::make_unique<Impl>(path, config)) {}

ShardedBinaryWriter::ShardedBinaryWriter(std::string* out,
                                         BinaryTraceWriterConfig config)
    : impl_(std::make_unique<Impl>(out, config)) {}

ShardedBinaryWriter::~ShardedBinaryWriter() { close(); }

void ShardedBinaryWriter::attachShard(std::uint32_t shard, TraceSink& sink) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (shard >= kBinlogMaxShards) {
    throw BinlogError(
        BinlogErrorKind::BadShard,
        "shard id " + std::to_string(shard) + " exceeds the format limit " +
            std::to_string(kBinlogMaxShards));
  }
  auto& slot = impl_->streams[shard];
  if (!slot) {
    slot = std::make_unique<Impl::ShardStream>();
    slot->owner = impl_.get();
    slot->shard = shard;
  }
  if (slot->sink != nullptr) {
    slot->sink->clearDrainHook();
  }
  slot->sink = &sink;
  sink.setDrainHook(&Impl::hookThunk, slot.get(),
                    impl_->config.occupancy_watermark,
                    impl_->config.time_watermark);
}

void ShardedBinaryWriter::detachAll() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (!impl_->closed) impl_->detachAllLocked();
}

void ShardedBinaryWriter::setNameSource(const TraceSink& sink) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->name_source = &sink;
}

bool ShardedBinaryWriter::close() { return impl_->close(); }

bool ShardedBinaryWriter::good() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->container.good();
}

std::uint64_t ShardedBinaryWriter::events() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->events_total;
}

std::uint64_t ShardedBinaryWriter::bytesWritten() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->container.bytes_written;
}

// --- Live tailing -----------------------------------------------------------

struct BinlogTailReader::Impl {
  std::string origin;
  std::string buffer;
  std::uint64_t base_offset = 0;  // absolute file offset of buffer[0]
  bool header_seen = false;
  bool footer_seen = false;
  bool trailer_done = false;
  std::uint64_t trailer_fnv = kFnvOffset;
  std::uint64_t chunks = 0;
  ContainerDecoder decoder;

  explicit Impl(std::string o)
      : origin(std::move(o)), decoder(origin, /*strict=*/true) {}

  void feed(const char* data, std::size_t size) {
    buffer.append(data, size);
    std::size_t pos = 0;
    for (;;) {
      const std::size_t avail = buffer.size() - pos;
      if (!header_seen) {
        if (avail < sizeof(kBinlogMagic) + 4) break;
        const char* h = buffer.data() + pos;
        if (std::memcmp(h, kBinlogMagic, sizeof(kBinlogMagic)) != 0) {
          throw BinlogError(BinlogErrorKind::BadMagic,
                            origin + ": not a binary trace file (bad magic)");
        }
        const std::uint32_t version = readU32(h + sizeof(kBinlogMagic));
        if (version != kBinlogVersion && version != kBinlogVersionV1) {
          throw BinlogError(BinlogErrorKind::BadVersion,
                            origin + ": unsupported binary trace version " +
                                std::to_string(version) +
                                " (this reader reads versions 1 and 2)");
        }
        decoder.setVersion(version);
        trailer_fnv = fnvWordStep(trailer_fnv, readU64(h));
        trailer_fnv = fnvWordStep(trailer_fnv, version);
        header_seen = true;
        pos += sizeof(kBinlogMagic) + 4;
        continue;
      }
      if (trailer_done) {
        if (avail > 0) {
          throw BinlogError(BinlogErrorKind::Malformed,
                            origin + ": " + std::to_string(avail) +
                                " trailing byte(s) after the file checksum");
        }
        break;
      }
      if (footer_seen) {
        if (avail < 8) break;
        const std::uint64_t got = readU64(buffer.data() + pos);
        if (got != trailer_fnv) {
          char msg[96];
          std::snprintf(msg, sizeof(msg),
                        "file checksum mismatch (stored 0x%016llx, computed "
                        "0x%016llx)",
                        static_cast<unsigned long long>(got),
                        static_cast<unsigned long long>(trailer_fnv));
          throw BinlogError(BinlogErrorKind::FileChecksum,
                            origin + ": " + msg);
        }
        pos += 8;
        trailer_done = true;
        continue;
      }
      if (avail < 12) break;
      const char* ch = buffer.data() + pos;
      const std::uint32_t kind = readU32(ch);
      const std::uint64_t len = readU64(ch + 4);
      if (len > (std::uint64_t{1} << 62)) {
        throw BinlogError(BinlogErrorKind::Malformed,
                          origin + ": chunk declares an absurd length " +
                              std::to_string(len));
      }
      if (avail < 12 + len + 8) break;  // partial chunk: wait for more bytes
      const char* payload = ch + 12;
      const std::uint64_t want = readU64(payload + len);
      const std::uint64_t got = binlogChecksum(payload, len);
      if (got != want) {
        char msg[96];
        std::snprintf(msg, sizeof(msg),
                      "chunk checksum mismatch (stored 0x%016llx, computed "
                      "0x%016llx)",
                      static_cast<unsigned long long>(want),
                      static_cast<unsigned long long>(got));
        throw BinlogError(BinlogErrorKind::ChunkChecksum,
                          origin + ": " + msg);
      }
      trailer_fnv = fnvWordStep(trailer_fnv, kind);
      trailer_fnv = fnvWordStep(trailer_fnv, len);
      trailer_fnv = fnvWordStep(trailer_fnv, want);
      decoder.consumeChunk(kind, payload, len, base_offset + pos);
      ++chunks;
      if (kind == binchunk::kFooter) footer_seen = true;
      pos += 12 + len + 8;
    }
    base_offset += pos;
    buffer.erase(0, pos);
  }
};

BinlogTailReader::BinlogTailReader(std::string origin)
    : impl_(std::make_unique<Impl>(std::move(origin))) {}

BinlogTailReader::~BinlogTailReader() = default;

void BinlogTailReader::feed(const char* data, std::size_t size) {
  impl_->feed(data, size);
}

bool BinlogTailReader::headerSeen() const noexcept {
  return impl_->header_seen;
}

bool BinlogTailReader::finished() const noexcept {
  return impl_->trailer_done;
}

std::uint64_t BinlogTailReader::chunksConsumed() const noexcept {
  return impl_->chunks;
}

std::uint64_t BinlogTailReader::eventsDecoded() const noexcept {
  return impl_->decoder.eventsDecoded();
}

std::uint64_t BinlogTailReader::bufferedBytes() const noexcept {
  return impl_->buffer.size();
}

const std::vector<BinlogIndexEntry>& BinlogTailReader::liveIndex()
    const noexcept {
  return impl_->decoder.observedIndex();
}

BinaryTrace BinlogTailReader::snapshot() const {
  return impl_->decoder.finalize();
}

}  // namespace iobts::obs
