#include "obs/binlog.hpp"

#if IOBTS_BINLOG_X86
#include <immintrin.h>
#endif

#if defined(__GNUC__) || defined(__clang__)
#define IOBTS_RESTRICT __restrict__
#else
#define IOBTS_RESTRICT
#endif

// GCC needs the vectorizer cranked up for the checksum's lane scan to turn
// into packed shift/xor; everything else in this file is fine at -O2.
#if defined(__GNUC__) && !defined(__clang__)
#define IOBTS_VECTOR_SCAN __attribute__((optimize("O3,unroll-loops")))
#else
#define IOBTS_VECTOR_SCAN
#endif

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <memory>

namespace iobts::obs {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
// Lane seeds: lane i starts at kFnvOffset perturbed by i times the golden
// ratio, so no two lanes ever share a state.
constexpr std::uint64_t kFnvGolden = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t fnvLaneSeed(unsigned lane) {
  return kFnvOffset ^ (kFnvGolden * lane);
}

constexpr std::uint64_t rotl1(std::uint64_t v) noexcept {
  return (v << 1) | (v >> 63);
}

std::uint64_t fnvWordStep(std::uint64_t h, std::uint64_t word) noexcept {
  h ^= word;
  h *= kFnvPrime;
  return h;
}

// On little-endian hosts the wire layout *is* the in-memory layout, and the
// memcpy forms compile to single loads/stores -- the byte-shift fallbacks
// keep big-endian hosts correct.
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
constexpr bool kHostLittleEndian = true;
#else
constexpr bool kHostLittleEndian = false;
#endif

void putU32(char* out, std::uint32_t v) noexcept {
  if constexpr (kHostLittleEndian) {
    std::memcpy(out, &v, sizeof(v));
  } else {
    for (int i = 0; i < 4; ++i) {
      out[i] = static_cast<char>((v >> (8 * i)) & 0xffU);
    }
  }
}

void putU64(char* out, std::uint64_t v) noexcept {
  if constexpr (kHostLittleEndian) {
    std::memcpy(out, &v, sizeof(v));
  } else {
    for (int i = 0; i < 8; ++i) {
      out[i] = static_cast<char>((v >> (8 * i)) & 0xffU);
    }
  }
}

void putF64(char* out, double v) noexcept {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  putU64(out, bits);
}

void appendU32(std::string& out, std::uint32_t v) {
  char buf[4];
  putU32(buf, v);
  out.append(buf, sizeof(buf));
}

void appendU64(std::string& out, std::uint64_t v) {
  char buf[8];
  putU64(buf, v);
  out.append(buf, sizeof(buf));
}

std::uint32_t readU32(const char* data) noexcept {
  if constexpr (kHostLittleEndian) {
    std::uint32_t out;
    std::memcpy(&out, data, sizeof(out));
    return out;
  } else {
    std::uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[i]))
             << (8 * i);
    }
    return out;
  }
}

std::uint64_t readU64(const char* data) noexcept {
  if constexpr (kHostLittleEndian) {
    std::uint64_t out;
    std::memcpy(&out, data, sizeof(out));
    return out;
  } else {
    std::uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[i]))
             << (8 * i);
    }
    return out;
  }
}

double readF64(const char* data) noexcept {
  const std::uint64_t bits = readU64(data);
  double out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

/// Strict little-endian cursor over the container bytes. Running out of
/// file bytes is Truncated with the offset and what was being read.
class FileReader {
 public:
  FileReader(const std::string& bytes, const std::string& origin)
      : bytes_(bytes), origin_(origin) {}

  std::size_t offset() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

  const char* take(std::size_t n, const char* what) {
    if (remaining() < n) {
      throw BinlogError(
          BinlogErrorKind::Truncated,
          origin_ + ": truncated trace: need " + std::to_string(n) +
              " byte(s) for " + what + " at offset " + std::to_string(pos_) +
              ", only " + std::to_string(remaining()) + " left");
    }
    const char* out = bytes_.data() + pos_;
    pos_ += n;
    return out;
  }

  std::uint32_t u32(const char* what) { return readU32(take(4, what)); }
  std::uint64_t u64(const char* what) { return readU64(take(8, what)); }

 private:
  const std::string& bytes_;
  const std::string& origin_;
  std::size_t pos_ = 0;
};

/// Cursor over one chunk's payload. The payload length was already
/// satisfied at file level, so running out of bytes *inside* it means the
/// chunk's internal structure lies about itself: Malformed, not Truncated.
class PayloadReader {
 public:
  PayloadReader(const char* data, std::size_t size, const std::string& origin,
                const char* chunk)
      : data_(data), size_(size), origin_(origin), chunk_(chunk) {}

  std::size_t remaining() const noexcept { return size_ - pos_; }

  const char* take(std::size_t n, const char* what) {
    if (remaining() < n) {
      throw BinlogError(
          BinlogErrorKind::Malformed,
          origin_ + ": " + chunk_ + " chunk: need " + std::to_string(n) +
              " byte(s) for " + what + ", only " +
              std::to_string(remaining()) + " left in the payload");
    }
    const char* out = data_ + pos_;
    pos_ += n;
    return out;
  }

  void requireDrained() const {
    if (remaining() != 0) {
      throw BinlogError(BinlogErrorKind::Malformed,
                        origin_ + ": " + chunk_ + " chunk has " +
                            std::to_string(remaining()) +
                            " trailing payload byte(s)");
    }
  }

  std::uint32_t u32(const char* what) { return readU32(take(4, what)); }
  std::uint64_t u64(const char* what) { return readU64(take(8, what)); }

 private:
  const char* data_;
  std::size_t size_;
  const std::string& origin_;
  const char* chunk_;
  std::size_t pos_ = 0;
};

std::uint64_t readPaddedWord(const char* data, std::size_t n) noexcept {
  char buf[8] = {};
  std::memcpy(buf, data, n);
  return readU64(buf);
}

}  // namespace

IOBTS_VECTOR_SCAN
std::uint64_t binlogChecksum(const char* data, std::size_t size) noexcept {
  // Four rotate-xor lanes compressed with FNV-1a at the end. Word j feeds
  // lane j % 4 as lane = rotl(lane, 1) ^ word: the lane pass is pure
  // shift/xor with no multiplies or cross-word dependencies, so it runs
  // near memory speed, and -- the reason it is four lanes and not eight --
  // all four accumulators fit in registers alongside the writer's loop
  // state, letting BinaryTraceWriter fold each 64-byte event record into
  // the running lanes inline with zero stack traffic. Every payload bit
  // lands in a lane (flips are always detected; the rotation count
  // position-stamps each word within its lane), the combine step is
  // genuine FNV-1a over the four lanes, and the payload length is bound
  // last -- a final partial word is zero-padded, which the bound length
  // disambiguates.
  std::uint64_t lanes[4];
  for (unsigned i = 0; i < 4; ++i) lanes[i] = fnvLaneSeed(i);
  std::size_t i = 0;
  for (; i + 32 <= size; i += 32) {
    for (unsigned w = 0; w < 4; ++w) {
      lanes[w] = rotl1(lanes[w]) ^ readU64(data + i + 8 * w);
    }
  }
  unsigned lane = 0;
  for (; i + 8 <= size; i += 8, ++lane) {
    lanes[lane] = rotl1(lanes[lane]) ^ readU64(data + i);
  }
  if (i < size) {
    lanes[lane] = rotl1(lanes[lane]) ^ readPaddedWord(data + i, size - i);
  }
  std::uint64_t h = kFnvOffset;
  for (unsigned w = 0; w < 4; ++w) h = fnvWordStep(h, lanes[w]);
  return fnvWordStep(h, size);
}

std::uint64_t binlogTrailerDigest(const char* data, std::size_t size) {
  if (size < sizeof(kBinlogMagic) + 4) {
    throw BinlogError(BinlogErrorKind::Truncated,
                      "<trailer digest>: body of " + std::to_string(size) +
                          " byte(s) is shorter than the file header");
  }
  std::uint64_t h = kFnvOffset;
  h = fnvWordStep(h, readU64(data));
  h = fnvWordStep(h, readU32(data + sizeof(kBinlogMagic)));
  std::size_t pos = sizeof(kBinlogMagic) + 4;
  while (pos < size) {
    if (size - pos < 12) {
      throw BinlogError(BinlogErrorKind::Truncated,
                        "<trailer digest>: chunk header truncated at offset " +
                            std::to_string(pos));
    }
    const std::uint32_t kind = readU32(data + pos);
    const std::uint64_t len = readU64(data + pos + 4);
    if (size - pos - 12 < len + 8) {
      throw BinlogError(BinlogErrorKind::Truncated,
                        "<trailer digest>: chunk payload truncated at offset " +
                            std::to_string(pos));
    }
    const std::uint64_t sum = readU64(data + pos + 12 + len);
    h = fnvWordStep(h, kind);
    h = fnvWordStep(h, len);
    h = fnvWordStep(h, sum);
    pos += 12 + len + 8;
  }
  return h;
}

const char* binlogErrorKindName(BinlogErrorKind kind) noexcept {
  switch (kind) {
    case BinlogErrorKind::Io: return "io";
    case BinlogErrorKind::Truncated: return "truncated";
    case BinlogErrorKind::BadMagic: return "bad_magic";
    case BinlogErrorKind::BadVersion: return "bad_version";
    case BinlogErrorKind::ChunkChecksum: return "chunk_checksum";
    case BinlogErrorKind::FileChecksum: return "file_checksum";
    case BinlogErrorKind::Malformed: return "malformed";
    case BinlogErrorKind::MissingFooter: return "missing_footer";
    case BinlogErrorKind::BadStringRef: return "bad_string_ref";
  }
  return "unknown";
}

bool looksLikeBinaryTrace(const std::string& bytes) noexcept {
  return bytes.size() >= sizeof(kBinlogMagic) &&
         std::memcmp(bytes.data(), kBinlogMagic, sizeof(kBinlogMagic)) == 0;
}

TraceEvent BinaryTrace::event(std::size_t i) const {
  const BinEvent& e = events.at(i);
  TraceEvent out;
  out.ts = e.ts;
  out.dur = e.dur;
  out.category = strings.at(e.category).c_str();
  out.name = strings.at(e.name).c_str();
  out.pid = e.pid;
  out.tid = e.tid;
  out.phase = e.phase;
  out.value = e.value;
  out.wall_ns = e.wall_ns;
  out.flow = e.flow;
  return out;
}

// --- Decoding ---------------------------------------------------------------

namespace {

void decodeStringsChunk(PayloadReader& p, BinaryTrace& trace) {
  const std::uint32_t count = p.u32("string count");
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t len = p.u32("string length");
    const char* data = p.take(len, "string bytes");
    trace.strings.emplace_back(data, len);
  }
  p.requireDrained();
}

void decodeEventsChunk(PayloadReader& p, const std::string& origin,
                       BinaryTrace& trace) {
  if (p.remaining() % kBinlogEventBytes != 0) {
    throw BinlogError(
        BinlogErrorKind::Malformed,
        origin + ": events chunk payload of " +
            std::to_string(p.remaining()) +
            " byte(s) is not a whole number of " +
            std::to_string(kBinlogEventBytes) + "-byte event record(s)");
  }
  const std::size_t count = p.remaining() / kBinlogEventBytes;
  trace.events.reserve(trace.events.size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    const char* r = p.take(kBinlogEventBytes, "event record");
    BinEvent e;
    e.ts = readF64(r);
    e.dur = readF64(r + 8);
    e.pid = readU32(r + 16);
    e.tid = readU32(r + 20);
    const std::uint32_t phase = readU32(r + 24);
    if (phase > static_cast<std::uint32_t>(Phase::FlowEnd)) {
      throw BinlogError(BinlogErrorKind::Malformed,
                        origin + ": event " +
                            std::to_string(trace.events.size()) +
                            " has unknown phase " + std::to_string(phase));
    }
    e.phase = static_cast<Phase>(phase);
    e.value = readF64(r + 32);
    e.wall_ns = readU64(r + 40);
    e.flow = readU64(r + 48);
    e.category = readU32(r + 56);
    e.name = readU32(r + 60);
    const std::uint32_t table =
        static_cast<std::uint32_t>(trace.strings.size());
    if (e.category >= table || e.name >= table) {
      const std::uint32_t bad = e.category >= table ? e.category : e.name;
      throw BinlogError(
          BinlogErrorKind::BadStringRef,
          origin + ": event " + std::to_string(trace.events.size()) +
              " references string id " + std::to_string(bad) +
              " but only " + std::to_string(table) +
              " string(s) are defined at this point");
    }
    trace.events.push_back(e);
  }
}

void decodeMetaChunk(PayloadReader& p, BinaryTrace& trace) {
  const std::uint32_t processes = p.u32("process-name count");
  for (std::uint32_t i = 0; i < processes; ++i) {
    const std::uint32_t pid = p.u32("process id");
    const std::uint32_t len = p.u32("process name length");
    const char* data = p.take(len, "process name");
    trace.process_names[pid] = std::string(data, len);
  }
  const std::uint32_t threads = p.u32("thread-name count");
  for (std::uint32_t i = 0; i < threads; ++i) {
    const std::uint32_t pid = p.u32("thread process id");
    const std::uint32_t tid = p.u32("thread id");
    const std::uint32_t len = p.u32("thread name length");
    const char* data = p.take(len, "thread name");
    trace.thread_names[{pid, tid}] = std::string(data, len);
  }
  p.requireDrained();
}

void decodeFooterChunk(PayloadReader& p, const std::string& origin,
                       BinaryTrace& trace) {
  if (p.remaining() != 40) {
    throw BinlogError(BinlogErrorKind::Malformed,
                      origin + ": footer chunk payload is " +
                          std::to_string(p.remaining()) +
                          " byte(s), expected 40");
  }
  const std::uint64_t event_count = p.u64("footer event count");
  const std::uint64_t string_count = p.u64("footer string count");
  trace.totals.recorded = p.u64("footer recorded total");
  trace.totals.dropped = p.u64("footer dropped total");
  trace.totals.streamed = p.u64("footer streamed total");
  if (event_count != trace.events.size()) {
    throw BinlogError(BinlogErrorKind::Malformed,
                      origin + ": footer declares " +
                          std::to_string(event_count) + " event(s) but " +
                          std::to_string(trace.events.size()) +
                          " were decoded");
  }
  if (string_count != trace.strings.size()) {
    throw BinlogError(BinlogErrorKind::Malformed,
                      origin + ": footer declares " +
                          std::to_string(string_count) + " string(s) but " +
                          std::to_string(trace.strings.size()) +
                          " were decoded");
  }
}

}  // namespace

BinaryTrace decodeBinaryTrace(const std::string& bytes,
                              const std::string& origin) {
  FileReader reader(bytes, origin);
  const char* magic = reader.take(sizeof(kBinlogMagic), "file magic");
  if (std::memcmp(magic, kBinlogMagic, sizeof(kBinlogMagic)) != 0) {
    throw BinlogError(BinlogErrorKind::BadMagic,
                      origin + ": not a binary trace file (bad magic)");
  }
  const std::uint32_t version = reader.u32("format version");
  if (version != kBinlogVersion) {
    throw BinlogError(
        BinlogErrorKind::BadVersion,
        origin + ": binary trace format version " + std::to_string(version) +
            " is not supported (this build reads version " +
            std::to_string(kBinlogVersion) + ")");
  }
  BinaryTrace trace;
  trace.version = version;
  std::uint64_t trailer = kFnvOffset;
  trailer = fnvWordStep(trailer, readU64(bytes.data()));
  trailer = fnvWordStep(trailer, version);
  bool footer_seen = false;
  while (!footer_seen) {
    if (reader.remaining() == 0) {
      throw BinlogError(BinlogErrorKind::MissingFooter,
                        origin + ": file ends after " +
                            std::to_string(reader.offset()) +
                            " byte(s) without a footer chunk");
    }
    const std::uint32_t kind = reader.u32("chunk kind");
    const std::uint64_t payload_len = reader.u64("chunk payload length");
    const char* payload = reader.take(payload_len, "chunk payload");
    const std::uint64_t want = reader.u64("chunk checksum");
    const std::uint64_t got = binlogChecksum(payload, payload_len);
    if (got != want) {
      char buf[112];
      std::snprintf(buf, sizeof(buf),
                    ": chunk kind %u payload checksum mismatch "
                    "(stored 0x%016llx, computed 0x%016llx)",
                    static_cast<unsigned>(kind),
                    static_cast<unsigned long long>(want),
                    static_cast<unsigned long long>(got));
      throw BinlogError(BinlogErrorKind::ChunkChecksum, origin + buf);
    }
    trailer = fnvWordStep(trailer, kind);
    trailer = fnvWordStep(trailer, payload_len);
    trailer = fnvWordStep(trailer, want);
    switch (kind) {
      case binchunk::kStrings: {
        PayloadReader p(payload, payload_len, origin, "strings");
        decodeStringsChunk(p, trace);
        break;
      }
      case binchunk::kEvents: {
        PayloadReader p(payload, payload_len, origin, "events");
        decodeEventsChunk(p, origin, trace);
        break;
      }
      case binchunk::kMeta: {
        PayloadReader p(payload, payload_len, origin, "meta");
        decodeMetaChunk(p, trace);
        break;
      }
      case binchunk::kFooter: {
        PayloadReader p(payload, payload_len, origin, "footer");
        decodeFooterChunk(p, origin, trace);
        footer_seen = true;
        break;
      }
      default:
        throw BinlogError(BinlogErrorKind::Malformed,
                          origin + ": unknown chunk kind " +
                              std::to_string(kind));
    }
  }
  const std::uint64_t want = reader.u64("file checksum");
  const std::uint64_t got = trailer;
  if (got != want) {
    char buf[112];
    std::snprintf(buf, sizeof(buf),
                  ": file checksum mismatch "
                  "(stored 0x%016llx, computed 0x%016llx)",
                  static_cast<unsigned long long>(want),
                  static_cast<unsigned long long>(got));
    throw BinlogError(BinlogErrorKind::FileChecksum, origin + buf);
  }
  if (reader.remaining() != 0) {
    throw BinlogError(BinlogErrorKind::Malformed,
                      origin + ": " + std::to_string(reader.remaining()) +
                          " trailing byte(s) after the file checksum");
  }
  return trace;
}

BinaryTrace readBinaryTrace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw BinlogError(BinlogErrorKind::Io,
                      path + ": cannot open binary trace for reading");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw BinlogError(BinlogErrorKind::Io, path + ": binary trace read failed");
  }
  return decodeBinaryTrace(bytes, path);
}

// --- Writer -----------------------------------------------------------------

BinaryTraceWriter::BinaryTraceWriter(TraceSink& sink, const std::string& path,
                                     BinaryTraceWriterConfig config)
    : sink_(sink),
      config_(config),
      file_(path, std::ios::binary | std::ios::trunc),
      file_mode_(true),
      trailer_fnv_(kFnvOffset) {
  resetChunkLanesLocked();
  file_ok_ = static_cast<bool>(file_);
  staged_.reserve(config_.flush_bytes + (config_.flush_bytes >> 2));
  growPendingLocked(config_.flush_bytes + kBinlogEventBytes);
  pending_strings_.assign(4, '\0');
  char header[sizeof(kBinlogMagic) + 4];
  std::memcpy(header, kBinlogMagic, sizeof(kBinlogMagic));
  putU32(header + sizeof(kBinlogMagic), kBinlogVersion);
  emitRawLocked(header, sizeof(header));
  trailer_fnv_ = fnvWordStep(trailer_fnv_, readU64(header));
  trailer_fnv_ = fnvWordStep(trailer_fnv_, kBinlogVersion);
  sink_.setDrainHook(&BinaryTraceWriter::drainThunk, this,
                     config_.occupancy_watermark, config_.time_watermark);
}

BinaryTraceWriter::BinaryTraceWriter(TraceSink& sink, std::string* out,
                                     BinaryTraceWriterConfig config)
    : sink_(sink),
      config_(config),
      out_(out),
      trailer_fnv_(kFnvOffset) {
  resetChunkLanesLocked();
  growPendingLocked(config_.flush_bytes + kBinlogEventBytes);
  pending_strings_.assign(4, '\0');
  char header[sizeof(kBinlogMagic) + 4];
  std::memcpy(header, kBinlogMagic, sizeof(kBinlogMagic));
  putU32(header + sizeof(kBinlogMagic), kBinlogVersion);
  emitRawLocked(header, sizeof(header));
  trailer_fnv_ = fnvWordStep(trailer_fnv_, readU64(header));
  trailer_fnv_ = fnvWordStep(trailer_fnv_, kBinlogVersion);
  sink_.setDrainHook(&BinaryTraceWriter::drainThunk, this,
                     config_.occupancy_watermark, config_.time_watermark);
}

BinaryTraceWriter::~BinaryTraceWriter() { close(); }

void BinaryTraceWriter::drainThunk(void* ctx) {
  static_cast<BinaryTraceWriter*>(ctx)->drain();
}

void BinaryTraceWriter::segmentThunk(void* ctx, const TraceEvent* events,
                                     std::size_t count) {
  // Runs under the *sink* lock from drainSegments; the writer lock is
  // already held by drain()/close().
  static_cast<BinaryTraceWriter*>(ctx)->appendLocked(events, count);
}

void BinaryTraceWriter::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  if (sink_.drainSegments(&BinaryTraceWriter::segmentThunk, this) > 0) {
    ++batches_;
    if (pending_size_ >= config_.flush_bytes) {
      sealEventsChunkLocked();
    }
  }
}

void BinaryTraceWriter::append(const TraceEvent* events, std::size_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  appendLocked(events, count);
  if (pending_size_ >= config_.flush_bytes) {
    sealEventsChunkLocked();
  }
}

bool BinaryTraceWriter::probeSlot(const char* text,
                                  std::uint32_t& id) const noexcept {
  const auto key = reinterpret_cast<std::uintptr_t>(text);
  std::size_t i = static_cast<std::size_t>(
                      (static_cast<std::uint64_t>(key) *
                       0x9e3779b97f4a7c15ULL) >> 32) &
                  (kInternSlots - 1);
  for (std::size_t probe = 0; probe < kInternSlots; ++probe) {
    const InternSlot& slot = intern_slots_[i];
    if (slot.ptr == text) {
      id = slot.id;
      return true;
    }
    if (slot.ptr == nullptr) return false;
    i = (i + 1) & (kInternSlots - 1);
  }
  return false;
}

std::uint32_t BinaryTraceWriter::internLocked(const char* text) {
  const auto key = reinterpret_cast<std::uintptr_t>(text);
  std::size_t i = static_cast<std::size_t>(
                      (static_cast<std::uint64_t>(key) *
                       0x9e3779b97f4a7c15ULL) >> 32) &
                  (kInternSlots - 1);
  InternSlot* claim = nullptr;
  for (std::size_t probe = 0; probe < kInternSlots; ++probe) {
    InternSlot& slot = intern_slots_[i];
    if (slot.ptr == text) return slot.id;
    if (slot.ptr == nullptr) {
      claim = &slot;
      break;
    }
    i = (i + 1) & (kInternSlots - 1);
  }
  // Slow path: resolve by content so two distinct literals with equal text
  // share one id (ids then depend only on the event stream, not on linker
  // layout).
  std::string content(text);
  auto [it, inserted] = intern_by_content_.try_emplace(content, 0);
  if (inserted) {
    it->second = next_string_id_++;
    appendU32(pending_strings_, static_cast<std::uint32_t>(content.size()));
    pending_strings_ += content;
    ++pending_string_count_;
  }
  if (claim != nullptr) {
    claim->ptr = text;
    claim->id = it->second;
  }
  return it->second;
}

void BinaryTraceWriter::resetChunkLanesLocked() {
  for (unsigned i = 0; i < 4; ++i) chunk_lanes_[i] = fnvLaneSeed(i);
}

void BinaryTraceWriter::growPendingLocked(std::size_t need) {
  std::size_t cap = pending_cap_ == 0 ? (std::size_t{1} << 16) : pending_cap_;
  while (cap < need) cap *= 2;
  // Over-allocate so the record area can start on a 64-byte boundary:
  // records are 64 bytes and pending_size_ only ever grows by whole
  // records, so every record lands 32-byte aligned -- what the x86 fast
  // path's non-temporal stores require.
  auto grown = std::make_unique<char[]>(cap + 63);
  char* const base = reinterpret_cast<char*>(
      (reinterpret_cast<std::uintptr_t>(grown.get()) + 63) &
      ~static_cast<std::uintptr_t>(63));
  if (pending_size_ > 0) {
    std::memcpy(base, pending_base_, pending_size_);
  }
  pending_data_ = std::move(grown);
  pending_base_ = base;
  pending_cap_ = cap;
}


#if IOBTS_BINLOG_X86
__attribute__((target("avx2"))) std::size_t BinaryTraceWriter::encodeRunAvx2(
    const InternSlot* slots, const TraceEvent*& ev_io, std::size_t count,
    char*& dst_io, std::uint64_t* lanes_io) {
  const TraceEvent* IOBTS_RESTRICT ev = ev_io;
  char* IOBTS_RESTRICT dst = dst_io;
  // All four checksum lanes ride in one 256-bit register; rotl1 across
  // them is two shifts and an or.
  __m256i lanes =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lanes_io));
  const auto probe = [slots](const char* text, std::uint32_t& id) noexcept {
    const auto key = reinterpret_cast<std::uintptr_t>(text);
    std::size_t i = static_cast<std::size_t>(
                        (static_cast<std::uint64_t>(key) *
                         0x9e3779b97f4a7c15ULL) >> 32) &
                    (kInternSlots - 1);
    for (std::size_t p = 0; p < kInternSlots; ++p) {
      const InternSlot& slot = slots[i];
      if (slot.ptr == text) {
        id = slot.id;
        return true;
      }
      if (slot.ptr == nullptr) return false;
      i = (i + 1) & (kInternSlots - 1);
    }
    return false;
  };
  // Consecutive events nearly always share a category (a component's spans
  // and counters carry the same one), so one register-resident cache entry
  // turns most category lookups into a pointer compare. Names typically
  // *alternate* -- a span name and a counter name per dispatch -- which a
  // single entry never catches, so names get two entries.
  const char* cached_category = nullptr;
  std::uint32_t cached_category_id = 0;
  const char* cached_name0 = nullptr;
  const char* cached_name1 = nullptr;
  std::uint32_t cached_name0_id = 0;
  std::uint32_t cached_name1_id = 0;
  std::size_t n = 0;
  for (; n < count; ++n, ++ev) {
    std::uint32_t name_id;
    if (ev->category != cached_category) {
      if (!probe(ev->category, cached_category_id)) break;
      cached_category = ev->category;
    }
    if (ev->name == cached_name0) {
      name_id = cached_name0_id;
    } else if (ev->name == cached_name1) {
      name_id = cached_name1_id;
    } else {
      if (!probe(ev->name, name_id)) break;
      cached_name1 = cached_name0;
      cached_name1_id = cached_name0_id;
      cached_name0 = ev->name;
      cached_name0_id = name_id;
    }
    const std::uint64_t ids =
        cached_category_id | (static_cast<std::uint64_t>(name_id) << 32);
    static_assert(offsetof(TraceEvent, category) == 56);
    const char* IOBTS_RESTRICT src = reinterpret_cast<const char*>(&ev->ts);
    // Record words 0..3 / 4..7: the low half is verbatim event bytes; the
    // high half swaps the string pointers (word 7) for the interned ids
    // via a blend (cheaper than a cross-lane insert).
    const __m256i lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src));
    const __m256i hi = _mm256_blend_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 32)),
        _mm256_set1_epi64x(static_cast<long long>(ids)), 0xC0);
    // Non-temporal stores: the record area is written once and not read
    // again until the chunk seals (the checksum folds from the source
    // event), so bypassing the cache skips the read-for-ownership traffic
    // a regular store would add per line -- on a bandwidth-bound encode
    // that is the difference that puts the binary sink ahead of the JSON
    // streamer. dst is 32-byte aligned by construction (see
    // growPendingLocked).
    _mm256_stream_si256(reinterpret_cast<__m256i*>(dst), lo);
    _mm256_stream_si256(reinterpret_cast<__m256i*>(dst + 32), hi);
    // Two generic checksum rounds (word j -> lane j % 4); rotl1 across
    // all four lanes is two shifts and an or.
    lanes = _mm256_xor_si256(
        _mm256_or_si256(_mm256_slli_epi64(lanes, 1),
                        _mm256_srli_epi64(lanes, 63)),
        lo);
    lanes = _mm256_xor_si256(
        _mm256_or_si256(_mm256_slli_epi64(lanes, 1),
                        _mm256_srli_epi64(lanes, 63)),
        hi);
    dst += kBinlogEventBytes;
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes_io), lanes);
  // Order the streaming stores before anything the caller publishes.
  _mm_sfence();
  ev_io = ev;
  dst_io = dst;
  return n;
}
#endif  // IOBTS_BINLOG_X86

void BinaryTraceWriter::appendLocked(const TraceEvent* events,
                                     std::size_t count) {
  // One capacity check covers the whole batch (the ring hands us whole
  // segments). The inner loop is deliberately call-free: string ids come
  // from an inline probe of the pointer-keyed slot table, and an intern
  // *miss* breaks out to the cold path below (which registers the string
  // and encodes that one record) before the tight loop re-enters. With no
  // call inside it, the checksum lanes live in vector registers for the
  // whole run instead of spilling around a potential internLocked() call.
  // This loop is the reason the binary sink undercuts the JSON streamer's
  // copy-out in BENCH_obs_overhead.json.
  const std::size_t need = pending_size_ + count * kBinlogEventBytes;
  if (need > pending_cap_) growPendingLocked(need);
  char* dst = pending_base_ + pending_size_;
  const TraceEvent* ev = events;
  std::uint64_t lanes[4];
  for (unsigned w = 0; w < 4; ++w) lanes[w] = chunk_lanes_[w];
  std::size_t n = 0;
  while (n < count) {
#if IOBTS_BINLOG_X86
    if (use_avx2_) {
      n += encodeRunAvx2(intern_slots_, ev, count - n, dst, lanes);
    } else
#endif
    for (; n < count; ++n, ++ev) {
      std::uint32_t category_id;
      std::uint32_t name_id;
      if (!probeSlot(ev->category, category_id) ||
          !probeSlot(ev->name, name_id)) {
        break;
      }
      const std::uint64_t ids =
          category_id | (static_cast<std::uint64_t>(name_id) << 32);
      if constexpr (kHostLittleEndian) {
        // TraceEvent was laid out for this: ts through flow (with the
        // explicit zero padding) is record words 0..6 byte for byte, so
        // the translation is one bulk copy plus the one word that actually
        // changes representation -- the interned ids replacing the string
        // pointers. The checksum lanes fold from the *source* event (and
        // the ids register), never from dst: reading dst 8 bytes at a time
        // right after the wide bulk-copy stores would stall on
        // store-to-load forwarding every record.
        static_assert(offsetof(TraceEvent, category) == 56);
        const char* IOBTS_RESTRICT src =
            reinterpret_cast<const char*>(&ev->ts);
        std::memcpy(dst, src, 56);
        putU64(dst + 56, ids);
        for (unsigned w = 0; w < 3; ++w) {
          lanes[w] = rotl1(rotl1(lanes[w]) ^ readU64(src + 8 * w)) ^
                     readU64(src + 8 * (w + 4));
        }
        lanes[3] = rotl1(rotl1(lanes[3]) ^ readU64(src + 24)) ^ ids;
      } else {
        putF64(dst, ev->ts);
        putF64(dst + 8, ev->dur);
        putU32(dst + 16, ev->pid);
        putU32(dst + 20, ev->tid);
        putU32(dst + 24, static_cast<std::uint8_t>(ev->phase));
        putU32(dst + 28, 0);
        putF64(dst + 32, ev->value);
        putU64(dst + 40, ev->wall_ns);
        putU64(dst + 48, ev->flow);
        putU64(dst + 56, ids);
        for (unsigned w = 0; w < 4; ++w) {
          lanes[w] = rotl1(rotl1(lanes[w]) ^ readU64(dst + 8 * w)) ^
                     readU64(dst + 8 * (w + 4));
        }
      }
      dst += kBinlogEventBytes;
    }
    if (n >= count) break;
    // Cold path: first sighting of a string pointer. internLocked claims a
    // probe slot for it, so the tight loop resumes hitting.
    const std::uint32_t category_id = internLocked(ev->category);
    const std::uint32_t name_id = internLocked(ev->name);
    const std::uint64_t ids =
        category_id | (static_cast<std::uint64_t>(name_id) << 32);
    if constexpr (kHostLittleEndian) {
      const char* src = reinterpret_cast<const char*>(&ev->ts);
      std::memcpy(dst, src, 56);
      putU64(dst + 56, ids);
      for (unsigned w = 0; w < 3; ++w) {
        lanes[w] = rotl1(rotl1(lanes[w]) ^ readU64(src + 8 * w)) ^
                   readU64(src + 8 * (w + 4));
      }
      lanes[3] = rotl1(rotl1(lanes[3]) ^ readU64(src + 24)) ^ ids;
    } else {
      putF64(dst, ev->ts);
      putF64(dst + 8, ev->dur);
      putU32(dst + 16, ev->pid);
      putU32(dst + 20, ev->tid);
      putU32(dst + 24, static_cast<std::uint8_t>(ev->phase));
      putU32(dst + 28, 0);
      putF64(dst + 32, ev->value);
      putU64(dst + 40, ev->wall_ns);
      putU64(dst + 48, ev->flow);
      putU64(dst + 56, ids);
      for (unsigned w = 0; w < 4; ++w) {
        lanes[w] = rotl1(rotl1(lanes[w]) ^ readU64(dst + 8 * w)) ^
                   readU64(dst + 8 * (w + 4));
      }
    }
    dst += kBinlogEventBytes;
    ++n;
    ++ev;
  }
  for (unsigned w = 0; w < 4; ++w) chunk_lanes_[w] = lanes[w];
  pending_size_ = need;
  events_written_ += count;
}

void BinaryTraceWriter::emitRawLocked(const char* data, std::size_t size) {
  bytes_written_ += size;
  if (file_mode_) {
    staged_.append(data, size);
  } else if (out_ != nullptr) {
    out_->append(data, size);
  }
}

void BinaryTraceWriter::emitChunkLocked(std::uint32_t kind,
                                        const std::string& payload) {
  emitChunkLocked(kind, payload.data(), payload.size(),
                  binlogChecksum(payload));
}

void BinaryTraceWriter::emitChunkLocked(std::uint32_t kind, const char* data,
                                        std::size_t size,
                                        std::uint64_t checksum) {
  char header[12];
  putU32(header, kind);
  putU64(header + 4, size);
  emitRawLocked(header, sizeof(header));
  emitRawLocked(data, size);
  char sum[8];
  putU64(sum, checksum);
  emitRawLocked(sum, sizeof(sum));
  trailer_fnv_ = fnvWordStep(trailer_fnv_, kind);
  trailer_fnv_ = fnvWordStep(trailer_fnv_, size);
  trailer_fnv_ = fnvWordStep(trailer_fnv_, checksum);
}

void BinaryTraceWriter::sealEventsChunkLocked() {
  if (pending_string_count_ > 0) {
    putU32(pending_strings_.data(), pending_string_count_);
    emitChunkLocked(binchunk::kStrings, pending_strings_);
    pending_strings_.assign(4, '\0');
    pending_string_count_ = 0;
  }
  if (pending_size_ > 0) {
    // Finish the incrementally folded lanes exactly the way binlogChecksum
    // would -- the seal never re-reads the payload.
    std::uint64_t sum = kFnvOffset;
    for (unsigned w = 0; w < 4; ++w) sum = fnvWordStep(sum, chunk_lanes_[w]);
    sum = fnvWordStep(sum, pending_size_);
    emitChunkLocked(binchunk::kEvents, pending_base_, pending_size_,
                    sum);
    pending_size_ = 0;
    resetChunkLanesLocked();
  }
  flushFileLocked(false);
}

void BinaryTraceWriter::flushFileLocked(bool force) {
  if (!file_mode_) return;
  if (!file_ok_) {
    staged_.clear();
    return;
  }
  if (!force && staged_.size() < config_.flush_bytes) return;
  if (!staged_.empty()) {
    file_.write(staged_.data(), static_cast<std::streamsize>(staged_.size()));
    if (!file_) file_ok_ = false;
    staged_.clear();
  }
}

bool BinaryTraceWriter::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return !file_mode_ || file_ok_;
  sink_.clearDrainHook();
  if (sink_.drainSegments(&BinaryTraceWriter::segmentThunk, this) > 0) {
    ++batches_;
  }
  sealEventsChunkLocked();
  // Meta chunk last: every track name registered during the run is known by
  // now (mirrors the streamer's metadata-at-close order).
  {
    std::string meta;
    const auto processes = sink_.processNames();
    appendU32(meta, static_cast<std::uint32_t>(processes.size()));
    for (const auto& [pid, name] : processes) {
      appendU32(meta, pid);
      appendU32(meta, static_cast<std::uint32_t>(name.size()));
      meta += name;
    }
    const auto threads = sink_.threadNames();
    appendU32(meta, static_cast<std::uint32_t>(threads.size()));
    for (const auto& [key, name] : threads) {
      appendU32(meta, key.first);
      appendU32(meta, key.second);
      appendU32(meta, static_cast<std::uint32_t>(name.size()));
      meta += name;
    }
    emitChunkLocked(binchunk::kMeta, meta);
  }
  {
    std::string footer;
    appendU64(footer, events_written_);
    appendU64(footer, static_cast<std::uint64_t>(next_string_id_));
    appendU64(footer, sink_.recorded());
    appendU64(footer, sink_.dropped());
    appendU64(footer, sink_.streamed());
    emitChunkLocked(binchunk::kFooter, footer);
  }
  // The trailer digest already covers the header and every chunk summary
  // (folded as each chunk was emitted); it is not part of its own hash.
  char tail[8];
  putU64(tail, trailer_fnv_);
  bytes_written_ += sizeof(tail);
  if (file_mode_) {
    staged_.append(tail, sizeof(tail));
    flushFileLocked(true);
    file_.close();
    if (!file_) file_ok_ = false;
  } else if (out_ != nullptr) {
    out_->append(tail, sizeof(tail));
  }
  closed_ = true;
  return !file_mode_ || file_ok_;
}

bool BinaryTraceWriter::good() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !file_mode_ || file_ok_;
}

std::uint64_t BinaryTraceWriter::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_written_;
}

std::uint64_t BinaryTraceWriter::batches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batches_;
}

std::uint64_t BinaryTraceWriter::bytesWritten() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_written_;
}

}  // namespace iobts::obs
