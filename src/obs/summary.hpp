// Deterministic run-summary artifacts.
//
// A RunSummary is the flight recorder's second output next to the event
// trace: a canonical, digestable description of *what the run did* --
// scenario identity, end-of-run state digest, per-phase required-bandwidth
// records (Eq. 1), the application-level B_req step series and its maximum
// (the minimal zero-waiting bandwidth, Sec. IV-C), per-link utilization and
// backlog timelines, stall attribution (I/O time hidden behind compute vs.
// blocked in waits), and the full metrics export.
//
// Summaries reuse the checkpoint plane's section discipline
// (ckpt::Section + canonical key=value text, doubles as hexfloats), so two
// runs of the same scenario render byte-identical summaries on any host and
// the digest is a one-word equality gate. summarizeFleet aggregates per
// shard with "shard<k>." prefixes in canonical shard order, so a sharded
// campaign's summary is byte-identical across worker thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/format.hpp"

namespace iobts::scenario {
class Instance;
}  // namespace iobts::scenario

namespace iobts::cluster {
class Fleet;
}  // namespace iobts::cluster

namespace iobts::obs {

struct SummaryOptions {
  /// Scenario identity recorded in the meta section. `scenario_text` is
  /// digested (FNV-1a), never stored, so summaries stay small and two runs
  /// of byte-identical scenario sources carry the same digest.
  std::string scenario_name;
  std::string scenario_text;
  /// Grid size of the per-link utilization/backlog timelines.
  std::size_t timeline_points = 32;
  /// Rows of the per-phase B_req table rendered verbatim; the full table is
  /// always digested, so truncation never hides a divergence.
  std::size_t max_phase_rows = 64;
};

/// The summary artifact: named canonical-text sections in deterministic
/// order, rendered and digested exactly like checkpoint state captures.
struct RunSummary {
  std::vector<ckpt::Section> sections;

  /// Canonical text blob ("[name]\n" + payload per section).
  std::string render() const;
  /// FNV-1a of render() -- byte-equal summaries <=> equal digests.
  std::uint64_t digest() const;
};

/// Summarize one finished scenario Instance. Sections, in order:
///   meta            -- scenario name/digest, run digest, elapsed, worlds
///   phases.<w>      -- per-phase B_ij table + app-level B_req maxima
///   stalls.<w>      -- per-world async time split (exploited vs. lost)
///   link            -- per-channel capacity/traffic/resolve counters plus
///                      utilization + backlog timelines
///   metrics         -- full registry export (sim + link + worlds); trace
///                      sinks are deliberately excluded so the summary is
///                      identical whether or not tracing was enabled
RunSummary summarizeInstance(scenario::Instance& instance,
                             const SummaryOptions& options = {});

/// Summarize a finished Fleet campaign: a fleet.meta section (completion
/// log in canonical order, digested) plus, per cluster in shard order,
/// "shard<k>.jobs" and "shard<k>.link" sections. Byte-identical across
/// worker thread counts by construction (the canonical log and per-shard
/// state are thread-count invariant).
RunSummary summarizeFleet(cluster::Fleet& fleet,
                          const SummaryOptions& options = {});

/// Write render() to `path` atomically (tmp + rename). Returns false on any
/// filesystem failure.
bool writeRunSummary(const RunSummary& summary, const std::string& path);

}  // namespace iobts::obs
