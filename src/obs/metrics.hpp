// Unified metrics registry.
//
// Every layer of the simulator keeps local stats structs on its hot paths
// (pfs::ResolveStats, mpisim::AdioEngine::Stats, cluster::JobResult
// counters, rtio::OpStats ...) -- those stay, because a plain struct
// increment is the cheapest possible instrumentation. What was missing is
// one place to *collect* them: each component exposes an
// `exportMetrics(MetricsRegistry&)` that publishes its counters under a
// stable dotted name, and the registry renders everything as a
// deterministic text table or JSON document.
//
// Names are stored in std::map, so iteration (and therefore every dump) is
// sorted and reproducible. Registration/update allocates; this is a
// collection-time API, not a per-event one.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace iobts::obs {

/// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// first N buckets; one overflow bucket catches everything above the last
/// bound. Bucket layout is fixed at registration so merging and dumping
/// stay trivially deterministic.
struct Histogram {
  std::vector<double> bounds;        // ascending upper edges
  std::vector<std::uint64_t> counts; // bounds.size() + 1 entries
  std::uint64_t total = 0;
  double sum = 0.0;

  void observe(double value);
};

class MetricsRegistry {
 public:
  /// Add `delta` to the named monotonic counter (created at zero).
  void addCounter(const std::string& name, std::uint64_t delta);
  /// Set the named gauge to `value` (last write wins).
  void setGauge(const std::string& name, double value);
  /// Record `value` into the named histogram; on first use the histogram
  /// is created with `bounds` as its bucket edges. Later calls ignore
  /// `bounds` (the layout is fixed).
  void observe(const std::string& name, double value,
               const std::vector<double>& bounds);
  /// Merge pre-aggregated bucket counts into the named histogram; on first
  /// use the histogram is created with `bounds`. `counts` must point at
  /// bounds.size() + 1 entries (last = overflow). Existing histograms must
  /// have the same bucket layout (enforced by IOBTS_CHECK).
  void mergeHistogram(const std::string& name,
                      const std::vector<double>& bounds,
                      const std::uint64_t* counts, std::uint64_t total,
                      double sum);

  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  const Histogram* histogram(const std::string& name) const;

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Human-readable sorted dump, one metric per line.
  std::string dumpText() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}, all keys
  /// sorted (Json objects are std::map-backed).
  Json toJson() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace iobts::obs
