// Offline analysis of binary flight-recorder traces.
//
// tools/iobts_profile is a thin CLI over these builders; they live in the
// library so the reports are golden-pinnable from unit tests (each builder
// returns the exact bytes the tool prints). All reports are deterministic:
// they are pure functions of the decoded trace, with fixed-precision
// formatting and stable (virtual-time, then recording-order) sorts.
//
//   * profileSummaryText    -- header + top spans by inclusive virtual time
//                              (the binary twin of trace_summarize's default
//                              mode).
//   * criticalPathText      -- per-journey critical-path split
//                              (queue | pace | link | fault), the paper's
//                              "where does an async request actually wait"
//                              question, reconstructed from flow events.
//   * linkTimelineCsv       -- per-channel bandwidth timeline binned from
//                              transfer spans (rate = bytes / span length,
//                              accumulated over each bin it overlaps).
//   * breqTableText/Csv     -- the application-level required-bandwidth
//                              step series (Eq. 3) recorded by the tmio
//                              bridge, i.e. the fig10/fig13-style B_req
//                              table, with the per-channel maximum (the
//                              minimal zero-waiting bandwidth, Sec. IV-C).
//   * chromeJsonFromBinaryTrace -- lossless conversion to Chrome trace
//                              JSON, byte-identical to what a live
//                              TraceStreamer in file mode would have
//                              written for the same run.
#pragma once

#include <cstddef>
#include <string>

#include "obs/binlog.hpp"

namespace iobts::obs {

/// Header (event/string/drop accounting, virtual span) plus the top
/// `top_spans` (category, name) rows ranked by total inclusive virtual
/// time, plus instant-event counts.
std::string profileSummaryText(const BinaryTrace& trace,
                               std::size_t top_spans = 20);

/// Per-journey critical-path split: flow chains grouped by journey id,
/// bound to the enclosing spans on their tracks, classified into
/// queue / pace / link / fault time. Top `top_journeys` rows by end-to-end
/// duration plus the all-journeys aggregate.
std::string criticalPathText(const BinaryTrace& trace,
                             std::size_t top_journeys = 20);

/// CSV: channel,t_seconds,bytes_per_second -- the summed rate of live
/// transfers per channel (read / write / faulted) on a `bins`-point grid
/// spanning the trace's transfer activity.
std::string linkTimelineCsv(const BinaryTrace& trace, std::size_t bins = 64);

/// Text table of the application-level B_req step series per channel, with
/// the per-channel maximum (minimal required bandwidth). Empty series are
/// reported as such (the run predates the tmio bridge annotations).
std::string breqTableText(const BinaryTrace& trace);

/// CSV: channel,t_seconds,required_bytes_per_second (one row per step of
/// the B_req series).
std::string breqTableCsv(const BinaryTrace& trace);

/// Render the decoded trace as the Chrome trace JSON document the live
/// streaming exporter (obs::TraceStreamer, file mode) would have produced
/// for the same run: same event serialization, same metadata-at-close
/// order, same otherData totals (from the footer). Byte-identical by
/// construction -- pinned by tests.
std::string chromeJsonFromBinaryTrace(const BinaryTrace& trace);

}  // namespace iobts::obs
