#include "obs/export.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "obs/binlog.hpp"

namespace iobts::obs {

namespace {

constexpr double kMicrosPerSecond = 1e6;

/// Journey ids are raw uint64 values (rank/request bit-packs) that can
/// exceed 2^53; render them as hex strings so JSON doubles never round
/// them. Chrome's flow-event "id" field accepts strings.
std::string journeyIdString(std::uint64_t journey) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(journey));
  return std::string(buf);
}

}  // namespace

Json traceEventJson(const TraceEvent& ev) {
  JsonObject o;
  o["name"] = Json(ev.name);
  o["cat"] = Json(ev.category);
  o["pid"] = Json(ev.pid);
  o["tid"] = Json(ev.tid);
  o["ts"] = Json(ev.ts * kMicrosPerSecond);
  switch (ev.phase) {
    case Phase::Complete: {
      o["ph"] = Json("X");
      o["dur"] = Json(ev.dur * kMicrosPerSecond);
      JsonObject args;
      args["value"] = Json(ev.value);
      if (ev.wall_ns != 0) args["wall_ns"] = Json(ev.wall_ns);
      o["args"] = Json(std::move(args));
      break;
    }
    case Phase::Instant: {
      o["ph"] = Json("i");
      o["s"] = Json("t");  // thread-scoped instant
      o["args"] = Json(JsonObject{{"value", Json(ev.value)}});
      break;
    }
    case Phase::Counter: {
      o["ph"] = Json("C");
      o["args"] = Json(JsonObject{{"value", Json(ev.value)}});
      break;
    }
    case Phase::FlowStart: {
      o["ph"] = Json("s");
      o["id"] = Json(journeyIdString(ev.flow));
      break;
    }
    case Phase::FlowStep: {
      o["ph"] = Json("t");
      o["id"] = Json(journeyIdString(ev.flow));
      break;
    }
    case Phase::FlowEnd: {
      o["ph"] = Json("f");
      o["bp"] = Json("e");  // bind to the enclosing slice, not the next one
      o["id"] = Json(journeyIdString(ev.flow));
      break;
    }
  }
  return Json(std::move(o));
}

JsonArray traceMetadataEvents(
    const std::map<std::uint32_t, std::string>& process_names,
    const std::map<std::pair<std::uint32_t, std::uint32_t>, std::string>&
        thread_names) {
  JsonArray events;
  for (const auto& [pid, name] : process_names) {
    JsonObject o;
    o["name"] = Json("process_name");
    o["ph"] = Json("M");
    o["pid"] = Json(pid);
    o["args"] = Json(JsonObject{{"name", Json(name)}});
    events.push_back(Json(std::move(o)));
  }
  for (const auto& [key, name] : thread_names) {
    JsonObject o;
    o["name"] = Json("thread_name");
    o["ph"] = Json("M");
    o["pid"] = Json(key.first);
    o["tid"] = Json(key.second);
    o["args"] = Json(JsonObject{{"name", Json(name)}});
    events.push_back(Json(std::move(o)));
  }
  return events;
}

JsonArray traceMetadataEvents(const TraceSink& sink) {
  return traceMetadataEvents(sink.processNames(), sink.threadNames());
}

Json chromeTraceJson(const TraceSink& sink) {
  // Metadata first: Perfetto picks up track names regardless of position,
  // but leading metadata keeps the document stable as events accumulate.
  JsonArray events = traceMetadataEvents(sink);
  for (const TraceEvent& ev : sink.snapshot()) {
    events.push_back(traceEventJson(ev));
  }
  JsonObject doc;
  doc["traceEvents"] = Json(std::move(events));
  doc["displayTimeUnit"] = Json("ms");
  doc["otherData"] = Json(JsonObject{
      {"recorded", Json(sink.recorded())},
      {"dropped", Json(sink.dropped())},
      {"streamed", Json(sink.streamed())},
      {"clock", Json(kTraceClockNote)},
  });
  return Json(std::move(doc));
}

std::string chromeTraceString(const TraceSink& sink) {
  return chromeTraceJson(sink).pretty();
}

bool writeChromeTrace(const TraceSink& sink, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << chromeTraceString(sink) << '\n';
  return static_cast<bool>(out);
}

Json loadChromeTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(path + ": cannot open trace file");
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw std::runtime_error(path + ": trace file read failed");
  }
  if (text.empty()) {
    throw std::runtime_error(path +
                             ": empty file (expected a Chrome trace JSON "
                             "document with a \"traceEvents\" array)");
  }
  if (looksLikeBinaryTrace(text)) {
    throw std::runtime_error(
        path +
        ": this is a binary flight-recorder trace (IOBTRCE), not Chrome "
        "trace JSON; read it with iobts_profile, or convert it with "
        "iobts_profile --to-chrome");
  }
  Json doc;
  try {
    doc = Json::parse(text);
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": invalid or truncated trace JSON: " +
                             e.what());
  }
  if (!doc.isObject()) {
    throw std::runtime_error(path +
                             ": JSON document has no \"traceEvents\" array "
                             "(not a Chrome trace export)");
  }
  const JsonObject& obj = doc.asObject();
  const auto events = obj.find("traceEvents");
  if (events == obj.end() || !events->second.isArray()) {
    throw std::runtime_error(path +
                             ": JSON document has no \"traceEvents\" array "
                             "(not a Chrome trace export)");
  }
  return doc;
}

bool writeMetrics(const MetricsRegistry& registry, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (json) {
    out << registry.toJson().pretty() << '\n';
  } else {
    out << registry.dumpText();
  }
  return static_cast<bool>(out);
}

}  // namespace iobts::obs
