#include "obs/export.hpp"

#include <cstdio>
#include <fstream>

namespace iobts::obs {

namespace {

constexpr double kMicrosPerSecond = 1e6;

/// Journey ids are raw uint64 values (rank/request bit-packs) that can
/// exceed 2^53; render them as hex strings so JSON doubles never round
/// them. Chrome's flow-event "id" field accepts strings.
std::string journeyIdString(std::uint64_t journey) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(journey));
  return std::string(buf);
}

}  // namespace

Json traceEventJson(const TraceEvent& ev) {
  JsonObject o;
  o["name"] = Json(ev.name);
  o["cat"] = Json(ev.category);
  o["pid"] = Json(ev.pid);
  o["tid"] = Json(ev.tid);
  o["ts"] = Json(ev.ts * kMicrosPerSecond);
  switch (ev.phase) {
    case Phase::Complete: {
      o["ph"] = Json("X");
      o["dur"] = Json(ev.dur * kMicrosPerSecond);
      JsonObject args;
      args["value"] = Json(ev.value);
      if (ev.wall_ns != 0) args["wall_ns"] = Json(ev.wall_ns);
      o["args"] = Json(std::move(args));
      break;
    }
    case Phase::Instant: {
      o["ph"] = Json("i");
      o["s"] = Json("t");  // thread-scoped instant
      o["args"] = Json(JsonObject{{"value", Json(ev.value)}});
      break;
    }
    case Phase::Counter: {
      o["ph"] = Json("C");
      o["args"] = Json(JsonObject{{"value", Json(ev.value)}});
      break;
    }
    case Phase::FlowStart: {
      o["ph"] = Json("s");
      o["id"] = Json(journeyIdString(ev.flow));
      break;
    }
    case Phase::FlowStep: {
      o["ph"] = Json("t");
      o["id"] = Json(journeyIdString(ev.flow));
      break;
    }
    case Phase::FlowEnd: {
      o["ph"] = Json("f");
      o["bp"] = Json("e");  // bind to the enclosing slice, not the next one
      o["id"] = Json(journeyIdString(ev.flow));
      break;
    }
  }
  return Json(std::move(o));
}

JsonArray traceMetadataEvents(const TraceSink& sink) {
  JsonArray events;
  for (const auto& [pid, name] : sink.processNames()) {
    JsonObject o;
    o["name"] = Json("process_name");
    o["ph"] = Json("M");
    o["pid"] = Json(pid);
    o["args"] = Json(JsonObject{{"name", Json(name)}});
    events.push_back(Json(std::move(o)));
  }
  for (const auto& [key, name] : sink.threadNames()) {
    JsonObject o;
    o["name"] = Json("thread_name");
    o["ph"] = Json("M");
    o["pid"] = Json(key.first);
    o["tid"] = Json(key.second);
    o["args"] = Json(JsonObject{{"name", Json(name)}});
    events.push_back(Json(std::move(o)));
  }
  return events;
}

Json chromeTraceJson(const TraceSink& sink) {
  // Metadata first: Perfetto picks up track names regardless of position,
  // but leading metadata keeps the document stable as events accumulate.
  JsonArray events = traceMetadataEvents(sink);
  for (const TraceEvent& ev : sink.snapshot()) {
    events.push_back(traceEventJson(ev));
  }
  JsonObject doc;
  doc["traceEvents"] = Json(std::move(events));
  doc["displayTimeUnit"] = Json("ms");
  doc["otherData"] = Json(JsonObject{
      {"recorded", Json(sink.recorded())},
      {"dropped", Json(sink.dropped())},
      {"streamed", Json(sink.streamed())},
      {"clock", Json("virtual (1 us trace time = 1 us simulated)")},
  });
  return Json(std::move(doc));
}

std::string chromeTraceString(const TraceSink& sink) {
  return chromeTraceJson(sink).pretty();
}

bool writeChromeTrace(const TraceSink& sink, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << chromeTraceString(sink) << '\n';
  return static_cast<bool>(out);
}

bool writeMetrics(const MetricsRegistry& registry, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (json) {
    out << registry.toJson().pretty() << '\n';
  } else {
    out << registry.dumpText();
  }
  return static_cast<bool>(out);
}

}  // namespace iobts::obs
