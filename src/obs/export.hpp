// Exporters for the observability plane.
//
// Chrome trace-event JSON (the "JSON Array Format" that chrome://tracing
// and Perfetto load): one "process" per simulated subsystem, virtual time
// mapped to microseconds. Event kinds map as
//
//   Phase::Complete  -> ph "X" (ts + dur)
//   Phase::Instant   -> ph "i" (thread-scoped)
//   Phase::Counter   -> ph "C"
//   Phase::FlowStart -> ph "s" (journey id in "id", hex string)
//   Phase::FlowStep  -> ph "t"
//   Phase::FlowEnd   -> ph "f" with "bp":"e" (bind to enclosing slice)
//
// plus ph "M" metadata records for the process/thread names registered on
// the sink. Serialization goes through util Json (std::map-backed objects),
// so key order -- and with wall capture off, the whole byte stream -- is
// deterministic across identical runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace iobts::obs {

/// The "clock" note every export writes into "otherData" -- shared so the
/// one-shot exporter, the live streamer, and the offline binlog converter
/// stay byte-for-byte in agreement.
inline constexpr const char* kTraceClockNote =
    "virtual (1 us trace time = 1 us simulated)";

/// Serialize one event to its Chrome trace-event object. Shared by the
/// one-shot exporter below and the streaming exporter (obs/stream.hpp), so
/// streamed and snapshot exports render events identically.
Json traceEventJson(const TraceEvent& event);

/// The ph "M" metadata records for the sink's registered process/thread
/// names, in deterministic (sorted) order.
JsonArray traceMetadataEvents(const TraceSink& sink);

/// Same, from bare name maps -- the offline converter renders a decoded
/// binary trace's track names through the identical code path.
JsonArray traceMetadataEvents(
    const std::map<std::uint32_t, std::string>& process_names,
    const std::map<std::pair<std::uint32_t, std::uint32_t>, std::string>&
        thread_names);

/// Build the Chrome trace document ({"traceEvents": [...], ...}).
Json chromeTraceJson(const TraceSink& sink);

/// Serialized pretty-printed Chrome trace document.
std::string chromeTraceString(const TraceSink& sink);

/// Convenience: write the Chrome trace to `path`. Returns false on I/O
/// failure.
bool writeChromeTrace(const TraceSink& sink, const std::string& path);

/// Convenience: write metrics (pretty JSON for ".json" paths, text table
/// otherwise). Returns false on I/O failure.
bool writeMetrics(const MetricsRegistry& registry, const std::string& path);

/// Load a Chrome trace JSON document for offline tools, with precise
/// diagnostics instead of a parser backtrace: distinguishes an unreadable
/// file, an empty file, binary flight-recorder input (points at
/// iobts_profile), invalid/truncated JSON, and a document without a
/// "traceEvents" array. Throws std::runtime_error on all of those.
Json loadChromeTraceFile(const std::string& path);

}  // namespace iobts::obs
