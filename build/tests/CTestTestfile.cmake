# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/pfs_test[1]_include.cmake")
include("/root/repo/build/tests/throttle_test[1]_include.cmake")
include("/root/repo/build/tests/mpisim_test[1]_include.cmake")
include("/root/repo/build/tests/tmio_test[1]_include.cmake")
include("/root/repo/build/tests/rtio_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
