file(REMOVE_RECURSE
  "CMakeFiles/tmio_test.dir/tmio/ftio_test.cpp.o"
  "CMakeFiles/tmio_test.dir/tmio/ftio_test.cpp.o.d"
  "CMakeFiles/tmio_test.dir/tmio/publisher_test.cpp.o"
  "CMakeFiles/tmio_test.dir/tmio/publisher_test.cpp.o.d"
  "CMakeFiles/tmio_test.dir/tmio/regions_test.cpp.o"
  "CMakeFiles/tmio_test.dir/tmio/regions_test.cpp.o.d"
  "CMakeFiles/tmio_test.dir/tmio/strategy_test.cpp.o"
  "CMakeFiles/tmio_test.dir/tmio/strategy_test.cpp.o.d"
  "CMakeFiles/tmio_test.dir/tmio/tracer_test.cpp.o"
  "CMakeFiles/tmio_test.dir/tmio/tracer_test.cpp.o.d"
  "tmio_test"
  "tmio_test.pdb"
  "tmio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
