# Empty dependencies file for tmio_test.
# This may be replaced when dependencies are built.
