# Empty dependencies file for rtio_test.
# This may be replaced when dependencies are built.
