file(REMOVE_RECURSE
  "CMakeFiles/rtio_test.dir/rtio/io_thread_test.cpp.o"
  "CMakeFiles/rtio_test.dir/rtio/io_thread_test.cpp.o.d"
  "rtio_test"
  "rtio_test.pdb"
  "rtio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
