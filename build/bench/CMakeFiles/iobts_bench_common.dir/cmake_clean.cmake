file(REMOVE_RECURSE
  "CMakeFiles/iobts_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/iobts_bench_common.dir/bench_common.cpp.o.d"
  "libiobts_bench_common.a"
  "libiobts_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobts_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
