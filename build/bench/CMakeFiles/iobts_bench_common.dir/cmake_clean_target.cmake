file(REMOVE_RECURSE
  "libiobts_bench_common.a"
)
