# Empty compiler generated dependencies file for iobts_bench_common.
# This may be replaced when dependencies are built.
