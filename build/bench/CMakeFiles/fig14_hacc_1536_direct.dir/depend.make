# Empty dependencies file for fig14_hacc_1536_direct.
# This may be replaced when dependencies are built.
