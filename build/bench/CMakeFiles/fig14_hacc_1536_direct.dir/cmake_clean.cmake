file(REMOVE_RECURSE
  "CMakeFiles/fig14_hacc_1536_direct.dir/fig14_hacc_1536_direct.cpp.o"
  "CMakeFiles/fig14_hacc_1536_direct.dir/fig14_hacc_1536_direct.cpp.o.d"
  "fig14_hacc_1536_direct"
  "fig14_hacc_1536_direct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_hacc_1536_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
