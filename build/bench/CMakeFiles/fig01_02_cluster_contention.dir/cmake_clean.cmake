file(REMOVE_RECURSE
  "CMakeFiles/fig01_02_cluster_contention.dir/fig01_02_cluster_contention.cpp.o"
  "CMakeFiles/fig01_02_cluster_contention.dir/fig01_02_cluster_contention.cpp.o.d"
  "fig01_02_cluster_contention"
  "fig01_02_cluster_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_02_cluster_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
