# Empty compiler generated dependencies file for fig01_02_cluster_contention.
# This may be replaced when dependencies are built.
