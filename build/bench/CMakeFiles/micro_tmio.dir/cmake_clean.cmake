file(REMOVE_RECURSE
  "CMakeFiles/micro_tmio.dir/micro_tmio.cpp.o"
  "CMakeFiles/micro_tmio.dir/micro_tmio.cpp.o.d"
  "micro_tmio"
  "micro_tmio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tmio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
