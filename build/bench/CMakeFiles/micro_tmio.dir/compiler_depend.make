# Empty compiler generated dependencies file for micro_tmio.
# This may be replaced when dependencies are built.
