file(REMOVE_RECURSE
  "CMakeFiles/fig04_regions_demo.dir/fig04_regions_demo.cpp.o"
  "CMakeFiles/fig04_regions_demo.dir/fig04_regions_demo.cpp.o.d"
  "fig04_regions_demo"
  "fig04_regions_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_regions_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
