# Empty compiler generated dependencies file for fig04_regions_demo.
# This may be replaced when dependencies are built.
