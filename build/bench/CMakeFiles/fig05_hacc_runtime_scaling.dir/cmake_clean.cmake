file(REMOVE_RECURSE
  "CMakeFiles/fig05_hacc_runtime_scaling.dir/fig05_hacc_runtime_scaling.cpp.o"
  "CMakeFiles/fig05_hacc_runtime_scaling.dir/fig05_hacc_runtime_scaling.cpp.o.d"
  "fig05_hacc_runtime_scaling"
  "fig05_hacc_runtime_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_hacc_runtime_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
