# Empty compiler generated dependencies file for fig05_hacc_runtime_scaling.
# This may be replaced when dependencies are built.
