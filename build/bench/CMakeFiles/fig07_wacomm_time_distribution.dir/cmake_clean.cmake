file(REMOVE_RECURSE
  "CMakeFiles/fig07_wacomm_time_distribution.dir/fig07_wacomm_time_distribution.cpp.o"
  "CMakeFiles/fig07_wacomm_time_distribution.dir/fig07_wacomm_time_distribution.cpp.o.d"
  "fig07_wacomm_time_distribution"
  "fig07_wacomm_time_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_wacomm_time_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
