# Empty compiler generated dependencies file for fig07_wacomm_time_distribution.
# This may be replaced when dependencies are built.
