# Empty compiler generated dependencies file for fig10_wacomm_9216.
# This may be replaced when dependencies are built.
