file(REMOVE_RECURSE
  "CMakeFiles/fig10_wacomm_9216.dir/fig10_wacomm_9216.cpp.o"
  "CMakeFiles/fig10_wacomm_9216.dir/fig10_wacomm_9216.cpp.o.d"
  "fig10_wacomm_9216"
  "fig10_wacomm_9216.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_wacomm_9216.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
