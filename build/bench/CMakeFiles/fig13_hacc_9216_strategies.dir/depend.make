# Empty dependencies file for fig13_hacc_9216_strategies.
# This may be replaced when dependencies are built.
