file(REMOVE_RECURSE
  "CMakeFiles/fig13_hacc_9216_strategies.dir/fig13_hacc_9216_strategies.cpp.o"
  "CMakeFiles/fig13_hacc_9216_strategies.dir/fig13_hacc_9216_strategies.cpp.o.d"
  "fig13_hacc_9216_strategies"
  "fig13_hacc_9216_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_hacc_9216_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
