# Empty compiler generated dependencies file for fig11_hacc_time_distribution.
# This may be replaced when dependencies are built.
