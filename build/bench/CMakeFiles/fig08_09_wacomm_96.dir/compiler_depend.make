# Empty compiler generated dependencies file for fig08_09_wacomm_96.
# This may be replaced when dependencies are built.
