file(REMOVE_RECURSE
  "CMakeFiles/fig08_09_wacomm_96.dir/fig08_09_wacomm_96.cpp.o"
  "CMakeFiles/fig08_09_wacomm_96.dir/fig08_09_wacomm_96.cpp.o.d"
  "fig08_09_wacomm_96"
  "fig08_09_wacomm_96.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_09_wacomm_96.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
