file(REMOVE_RECURSE
  "CMakeFiles/fig06_hacc_overhead_distribution.dir/fig06_hacc_overhead_distribution.cpp.o"
  "CMakeFiles/fig06_hacc_overhead_distribution.dir/fig06_hacc_overhead_distribution.cpp.o.d"
  "fig06_hacc_overhead_distribution"
  "fig06_hacc_overhead_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_hacc_overhead_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
