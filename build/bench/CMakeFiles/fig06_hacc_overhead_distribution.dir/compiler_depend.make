# Empty compiler generated dependencies file for fig06_hacc_overhead_distribution.
# This may be replaced when dependencies are built.
