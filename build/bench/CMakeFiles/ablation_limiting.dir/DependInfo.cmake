
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_limiting.cpp" "bench/CMakeFiles/ablation_limiting.dir/ablation_limiting.cpp.o" "gcc" "bench/CMakeFiles/ablation_limiting.dir/ablation_limiting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/iobts_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rtio/CMakeFiles/iobts_rtio.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/iobts_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/iobts_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/tmio/CMakeFiles/iobts_tmio.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/iobts_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/iobts_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iobts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/throttle/CMakeFiles/iobts_throttle.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iobts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
