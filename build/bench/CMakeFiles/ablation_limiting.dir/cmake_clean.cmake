file(REMOVE_RECURSE
  "CMakeFiles/ablation_limiting.dir/ablation_limiting.cpp.o"
  "CMakeFiles/ablation_limiting.dir/ablation_limiting.cpp.o.d"
  "ablation_limiting"
  "ablation_limiting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_limiting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
