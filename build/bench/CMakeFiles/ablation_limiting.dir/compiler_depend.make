# Empty compiler generated dependencies file for ablation_limiting.
# This may be replaced when dependencies are built.
