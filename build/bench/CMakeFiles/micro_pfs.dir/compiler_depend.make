# Empty compiler generated dependencies file for micro_pfs.
# This may be replaced when dependencies are built.
