file(REMOVE_RECURSE
  "CMakeFiles/micro_pfs.dir/micro_pfs.cpp.o"
  "CMakeFiles/micro_pfs.dir/micro_pfs.cpp.o.d"
  "micro_pfs"
  "micro_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
