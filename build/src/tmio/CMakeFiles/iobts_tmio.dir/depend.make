# Empty dependencies file for iobts_tmio.
# This may be replaced when dependencies are built.
