file(REMOVE_RECURSE
  "libiobts_tmio.a"
)
