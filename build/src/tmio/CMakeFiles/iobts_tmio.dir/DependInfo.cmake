
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tmio/ftio.cpp" "src/tmio/CMakeFiles/iobts_tmio.dir/ftio.cpp.o" "gcc" "src/tmio/CMakeFiles/iobts_tmio.dir/ftio.cpp.o.d"
  "/root/repo/src/tmio/publisher.cpp" "src/tmio/CMakeFiles/iobts_tmio.dir/publisher.cpp.o" "gcc" "src/tmio/CMakeFiles/iobts_tmio.dir/publisher.cpp.o.d"
  "/root/repo/src/tmio/regions.cpp" "src/tmio/CMakeFiles/iobts_tmio.dir/regions.cpp.o" "gcc" "src/tmio/CMakeFiles/iobts_tmio.dir/regions.cpp.o.d"
  "/root/repo/src/tmio/report.cpp" "src/tmio/CMakeFiles/iobts_tmio.dir/report.cpp.o" "gcc" "src/tmio/CMakeFiles/iobts_tmio.dir/report.cpp.o.d"
  "/root/repo/src/tmio/strategy.cpp" "src/tmio/CMakeFiles/iobts_tmio.dir/strategy.cpp.o" "gcc" "src/tmio/CMakeFiles/iobts_tmio.dir/strategy.cpp.o.d"
  "/root/repo/src/tmio/tracer.cpp" "src/tmio/CMakeFiles/iobts_tmio.dir/tracer.cpp.o" "gcc" "src/tmio/CMakeFiles/iobts_tmio.dir/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpisim/CMakeFiles/iobts_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/iobts_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iobts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iobts_util.dir/DependInfo.cmake"
  "/root/repo/build/src/throttle/CMakeFiles/iobts_throttle.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
