file(REMOVE_RECURSE
  "CMakeFiles/iobts_tmio.dir/ftio.cpp.o"
  "CMakeFiles/iobts_tmio.dir/ftio.cpp.o.d"
  "CMakeFiles/iobts_tmio.dir/publisher.cpp.o"
  "CMakeFiles/iobts_tmio.dir/publisher.cpp.o.d"
  "CMakeFiles/iobts_tmio.dir/regions.cpp.o"
  "CMakeFiles/iobts_tmio.dir/regions.cpp.o.d"
  "CMakeFiles/iobts_tmio.dir/report.cpp.o"
  "CMakeFiles/iobts_tmio.dir/report.cpp.o.d"
  "CMakeFiles/iobts_tmio.dir/strategy.cpp.o"
  "CMakeFiles/iobts_tmio.dir/strategy.cpp.o.d"
  "CMakeFiles/iobts_tmio.dir/tracer.cpp.o"
  "CMakeFiles/iobts_tmio.dir/tracer.cpp.o.d"
  "libiobts_tmio.a"
  "libiobts_tmio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobts_tmio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
