file(REMOVE_RECURSE
  "CMakeFiles/iobts_sim.dir/simulation.cpp.o"
  "CMakeFiles/iobts_sim.dir/simulation.cpp.o.d"
  "libiobts_sim.a"
  "libiobts_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobts_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
