file(REMOVE_RECURSE
  "libiobts_sim.a"
)
