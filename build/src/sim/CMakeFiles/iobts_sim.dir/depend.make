# Empty dependencies file for iobts_sim.
# This may be replaced when dependencies are built.
