file(REMOVE_RECURSE
  "CMakeFiles/iobts_cluster.dir/cluster.cpp.o"
  "CMakeFiles/iobts_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/iobts_cluster.dir/coordinator.cpp.o"
  "CMakeFiles/iobts_cluster.dir/coordinator.cpp.o.d"
  "libiobts_cluster.a"
  "libiobts_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobts_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
