# Empty compiler generated dependencies file for iobts_cluster.
# This may be replaced when dependencies are built.
