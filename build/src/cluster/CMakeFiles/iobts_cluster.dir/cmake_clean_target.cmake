file(REMOVE_RECURSE
  "libiobts_cluster.a"
)
