file(REMOVE_RECURSE
  "CMakeFiles/iobts_workloads.dir/hacc_io.cpp.o"
  "CMakeFiles/iobts_workloads.dir/hacc_io.cpp.o.d"
  "CMakeFiles/iobts_workloads.dir/wacomm.cpp.o"
  "CMakeFiles/iobts_workloads.dir/wacomm.cpp.o.d"
  "libiobts_workloads.a"
  "libiobts_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobts_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
