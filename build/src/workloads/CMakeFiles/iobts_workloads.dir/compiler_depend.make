# Empty compiler generated dependencies file for iobts_workloads.
# This may be replaced when dependencies are built.
