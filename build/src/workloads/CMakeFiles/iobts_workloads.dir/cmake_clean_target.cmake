file(REMOVE_RECURSE
  "libiobts_workloads.a"
)
