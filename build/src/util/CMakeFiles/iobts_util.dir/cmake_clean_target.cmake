file(REMOVE_RECURSE
  "libiobts_util.a"
)
