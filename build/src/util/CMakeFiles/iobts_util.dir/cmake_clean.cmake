file(REMOVE_RECURSE
  "CMakeFiles/iobts_util.dir/ascii_chart.cpp.o"
  "CMakeFiles/iobts_util.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/iobts_util.dir/csv.cpp.o"
  "CMakeFiles/iobts_util.dir/csv.cpp.o.d"
  "CMakeFiles/iobts_util.dir/json.cpp.o"
  "CMakeFiles/iobts_util.dir/json.cpp.o.d"
  "CMakeFiles/iobts_util.dir/log.cpp.o"
  "CMakeFiles/iobts_util.dir/log.cpp.o.d"
  "CMakeFiles/iobts_util.dir/rng.cpp.o"
  "CMakeFiles/iobts_util.dir/rng.cpp.o.d"
  "CMakeFiles/iobts_util.dir/stats.cpp.o"
  "CMakeFiles/iobts_util.dir/stats.cpp.o.d"
  "CMakeFiles/iobts_util.dir/string_util.cpp.o"
  "CMakeFiles/iobts_util.dir/string_util.cpp.o.d"
  "CMakeFiles/iobts_util.dir/units.cpp.o"
  "CMakeFiles/iobts_util.dir/units.cpp.o.d"
  "libiobts_util.a"
  "libiobts_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobts_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
