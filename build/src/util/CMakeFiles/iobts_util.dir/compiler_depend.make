# Empty compiler generated dependencies file for iobts_util.
# This may be replaced when dependencies are built.
