file(REMOVE_RECURSE
  "libiobts_throttle.a"
)
