file(REMOVE_RECURSE
  "CMakeFiles/iobts_throttle.dir/pacer.cpp.o"
  "CMakeFiles/iobts_throttle.dir/pacer.cpp.o.d"
  "libiobts_throttle.a"
  "libiobts_throttle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobts_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
