# Empty compiler generated dependencies file for iobts_throttle.
# This may be replaced when dependencies are built.
