file(REMOVE_RECURSE
  "libiobts_rtio.a"
)
