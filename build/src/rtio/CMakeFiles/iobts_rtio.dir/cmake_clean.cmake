file(REMOVE_RECURSE
  "CMakeFiles/iobts_rtio.dir/io_thread.cpp.o"
  "CMakeFiles/iobts_rtio.dir/io_thread.cpp.o.d"
  "libiobts_rtio.a"
  "libiobts_rtio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobts_rtio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
