# Empty compiler generated dependencies file for iobts_rtio.
# This may be replaced when dependencies are built.
