# Empty dependencies file for iobts_pfs.
# This may be replaced when dependencies are built.
