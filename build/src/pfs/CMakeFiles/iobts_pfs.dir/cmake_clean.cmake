file(REMOVE_RECURSE
  "CMakeFiles/iobts_pfs.dir/burst_buffer.cpp.o"
  "CMakeFiles/iobts_pfs.dir/burst_buffer.cpp.o.d"
  "CMakeFiles/iobts_pfs.dir/fair_share.cpp.o"
  "CMakeFiles/iobts_pfs.dir/fair_share.cpp.o.d"
  "CMakeFiles/iobts_pfs.dir/file_store.cpp.o"
  "CMakeFiles/iobts_pfs.dir/file_store.cpp.o.d"
  "CMakeFiles/iobts_pfs.dir/shared_link.cpp.o"
  "CMakeFiles/iobts_pfs.dir/shared_link.cpp.o.d"
  "libiobts_pfs.a"
  "libiobts_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobts_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
