
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pfs/burst_buffer.cpp" "src/pfs/CMakeFiles/iobts_pfs.dir/burst_buffer.cpp.o" "gcc" "src/pfs/CMakeFiles/iobts_pfs.dir/burst_buffer.cpp.o.d"
  "/root/repo/src/pfs/fair_share.cpp" "src/pfs/CMakeFiles/iobts_pfs.dir/fair_share.cpp.o" "gcc" "src/pfs/CMakeFiles/iobts_pfs.dir/fair_share.cpp.o.d"
  "/root/repo/src/pfs/file_store.cpp" "src/pfs/CMakeFiles/iobts_pfs.dir/file_store.cpp.o" "gcc" "src/pfs/CMakeFiles/iobts_pfs.dir/file_store.cpp.o.d"
  "/root/repo/src/pfs/shared_link.cpp" "src/pfs/CMakeFiles/iobts_pfs.dir/shared_link.cpp.o" "gcc" "src/pfs/CMakeFiles/iobts_pfs.dir/shared_link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/iobts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/throttle/CMakeFiles/iobts_throttle.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iobts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
