file(REMOVE_RECURSE
  "libiobts_pfs.a"
)
