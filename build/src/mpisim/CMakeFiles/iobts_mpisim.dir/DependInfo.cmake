
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpisim/adio_engine.cpp" "src/mpisim/CMakeFiles/iobts_mpisim.dir/adio_engine.cpp.o" "gcc" "src/mpisim/CMakeFiles/iobts_mpisim.dir/adio_engine.cpp.o.d"
  "/root/repo/src/mpisim/types.cpp" "src/mpisim/CMakeFiles/iobts_mpisim.dir/types.cpp.o" "gcc" "src/mpisim/CMakeFiles/iobts_mpisim.dir/types.cpp.o.d"
  "/root/repo/src/mpisim/world.cpp" "src/mpisim/CMakeFiles/iobts_mpisim.dir/world.cpp.o" "gcc" "src/mpisim/CMakeFiles/iobts_mpisim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pfs/CMakeFiles/iobts_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/throttle/CMakeFiles/iobts_throttle.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iobts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iobts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
