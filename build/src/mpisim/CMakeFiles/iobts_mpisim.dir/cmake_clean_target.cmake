file(REMOVE_RECURSE
  "libiobts_mpisim.a"
)
