# Empty dependencies file for iobts_mpisim.
# This may be replaced when dependencies are built.
