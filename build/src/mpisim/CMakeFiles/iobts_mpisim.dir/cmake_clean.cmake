file(REMOVE_RECURSE
  "CMakeFiles/iobts_mpisim.dir/adio_engine.cpp.o"
  "CMakeFiles/iobts_mpisim.dir/adio_engine.cpp.o.d"
  "CMakeFiles/iobts_mpisim.dir/types.cpp.o"
  "CMakeFiles/iobts_mpisim.dir/types.cpp.o.d"
  "CMakeFiles/iobts_mpisim.dir/world.cpp.o"
  "CMakeFiles/iobts_mpisim.dir/world.cpp.o.d"
  "libiobts_mpisim.a"
  "libiobts_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobts_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
