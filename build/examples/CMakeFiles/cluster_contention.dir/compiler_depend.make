# Empty compiler generated dependencies file for cluster_contention.
# This may be replaced when dependencies are built.
