file(REMOVE_RECURSE
  "CMakeFiles/cluster_contention.dir/cluster_contention.cpp.o"
  "CMakeFiles/cluster_contention.dir/cluster_contention.cpp.o.d"
  "cluster_contention"
  "cluster_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
