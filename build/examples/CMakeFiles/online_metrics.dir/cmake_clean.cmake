file(REMOVE_RECURSE
  "CMakeFiles/online_metrics.dir/online_metrics.cpp.o"
  "CMakeFiles/online_metrics.dir/online_metrics.cpp.o.d"
  "online_metrics"
  "online_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
