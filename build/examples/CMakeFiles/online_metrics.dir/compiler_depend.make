# Empty compiler generated dependencies file for online_metrics.
# This may be replaced when dependencies are built.
