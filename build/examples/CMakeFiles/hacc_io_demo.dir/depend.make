# Empty dependencies file for hacc_io_demo.
# This may be replaced when dependencies are built.
