file(REMOVE_RECURSE
  "CMakeFiles/hacc_io_demo.dir/hacc_io_demo.cpp.o"
  "CMakeFiles/hacc_io_demo.dir/hacc_io_demo.cpp.o.d"
  "hacc_io_demo"
  "hacc_io_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hacc_io_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
