# Empty compiler generated dependencies file for ftio_demo.
# This may be replaced when dependencies are built.
