file(REMOVE_RECURSE
  "CMakeFiles/ftio_demo.dir/ftio_demo.cpp.o"
  "CMakeFiles/ftio_demo.dir/ftio_demo.cpp.o.d"
  "ftio_demo"
  "ftio_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftio_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
