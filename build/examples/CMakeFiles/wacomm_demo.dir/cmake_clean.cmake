file(REMOVE_RECURSE
  "CMakeFiles/wacomm_demo.dir/wacomm_demo.cpp.o"
  "CMakeFiles/wacomm_demo.dir/wacomm_demo.cpp.o.d"
  "wacomm_demo"
  "wacomm_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wacomm_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
