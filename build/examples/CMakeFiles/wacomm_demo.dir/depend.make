# Empty dependencies file for wacomm_demo.
# This may be replaced when dependencies are built.
