# Empty dependencies file for rtio_pacing.
# This may be replaced when dependencies are built.
