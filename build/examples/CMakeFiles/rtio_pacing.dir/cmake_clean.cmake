file(REMOVE_RECURSE
  "CMakeFiles/rtio_pacing.dir/rtio_pacing.cpp.o"
  "CMakeFiles/rtio_pacing.dir/rtio_pacing.cpp.o.d"
  "rtio_pacing"
  "rtio_pacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtio_pacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
