# Empty compiler generated dependencies file for rtio_pacing.
# This may be replaced when dependencies are built.
