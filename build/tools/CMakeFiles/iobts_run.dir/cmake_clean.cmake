file(REMOVE_RECURSE
  "CMakeFiles/iobts_run.dir/iobts_run.cpp.o"
  "CMakeFiles/iobts_run.dir/iobts_run.cpp.o.d"
  "iobts_run"
  "iobts_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobts_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
