# Empty compiler generated dependencies file for iobts_run.
# This may be replaced when dependencies are built.
