// Real-clock pacing demo: the same Case A/B throttling algorithm the
// simulated ADIO driver uses, executed by a real std::thread against
// steady_clock, writing an actual file.
//
//   $ ./rtio_pacing [limit_mb_per_s] [total_mib]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <vector>

#include "rtio/io_thread.hpp"
#include "util/units.hpp"

using namespace iobts;

int main(int argc, char** argv) {
  const double limit_mb = argc > 1 ? std::atof(argv[1]) : 64.0;
  const Bytes total = (argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16)
                      * kMiB;

  const auto path = std::filesystem::temp_directory_path() / "iobts_rtio.bin";
  std::ofstream out(path, std::ios::binary);
  std::vector<char> buffer(1 * kMiB, 'x');

  rtio::IoThread io(throttle::PacerConfig{.subrequest_size = 1 * kMiB});

  // Pass 1: unlimited.
  auto unlimited = io.submit(total, [&](Bytes, Bytes size) {
    while (size > 0) {
      const Bytes piece = std::min<Bytes>(size, buffer.size());
      out.write(buffer.data(), static_cast<std::streamsize>(piece));
      size -= piece;
    }
  });
  unlimited.wait();

  // Pass 2: limited.
  io.setLimit(limit_mb * kMB);
  out.seekp(0);
  auto limited = io.submit(total, [&](Bytes, Bytes size) {
    while (size > 0) {
      const Bytes piece = std::min<Bytes>(size, buffer.size());
      out.write(buffer.data(), static_cast<std::streamsize>(piece));
      size -= piece;
    }
  });
  limited.wait();

  const auto u = unlimited.stats();
  const auto l = limited.stats();
  std::printf("wrote %s twice to %s\n", formatBytes(total).c_str(),
              path.c_str());
  std::printf("  unlimited: %8.1f ms  -> %s\n", u.durationSeconds() * 1e3,
              formatBandwidth(u.achievedRate()).c_str());
  std::printf("  limit %s: %8.1f ms  -> %s  (slept %.1f ms over %zu "
              "sub-requests)\n",
              formatBandwidth(limit_mb * kMB).c_str(),
              l.durationSeconds() * 1e3,
              formatBandwidth(l.achievedRate()).c_str(),
              l.slept_seconds * 1e3, l.subrequests);
  std::filesystem::remove(path);
  return 0;
}
