// FTIO demo: detect the I/O period of a running application from TMIO's
// online metrics and predict the next burst (the TMIO + FTIO combination
// the paper describes for online phase detection).
//
//   $ ./ftio_demo [ranks]
#include <cstdio>

#include "mpisim/world.hpp"
#include "tmio/ftio.hpp"
#include "tmio/tracer.hpp"
#include "workloads/wacomm.hpp"

using namespace iobts;

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 24;

  sim::Simulation sim;
  pfs::SharedLink link(sim, pfs::LinkConfig{});
  pfs::FileStore store;
  tmio::Tracer tracer({});  // trace only
  mpisim::WorldConfig wcfg;
  wcfg.ranks = ranks;
  mpisim::World world(sim, link, store, wcfg, &tracer);
  tracer.attach(world);

  // WaComM++ writes once per simulated hour -- a textbook periodic signal.
  workloads::WacommConfig wacomm;
  wacomm.iterations = 30;
  wacomm.bytes_per_particle = 2048;
  wacomm.iteration_fixed_seconds = 2.2;
  world.launch(workloads::wacommProgram(wacomm));
  sim.run();

  const double t_end = world.elapsed();
  std::printf("run finished in %.1f virtual s; %zu phase records traced\n",
              t_end, tracer.phaseRecords().size());

  // 1. Periodicity of the application-level throughput signal.
  tmio::FtioAnalyzer ftio;
  const auto from_signal = ftio.analyzeSeries(
      tracer.appThroughputSeries(pfs::Channel::Write), 0.0, t_end);
  std::printf("\nthroughput-signal analysis:\n");
  std::printf("  periodic:   %s\n", from_signal.periodic ? "yes" : "no");
  std::printf("  period:     %.2f s (expected: the ~%.2f s iteration)\n",
              from_signal.period,
              wacomm.iteration_fixed_seconds +
                  wacomm.iteration_compute_core_seconds / ranks);
  std::printf("  confidence: %.2f\n", from_signal.confidence);

  // 2. Cadence of rank 0's write-phase start events.
  std::vector<double> starts;
  for (const auto& p : tracer.phaseRecords()) {
    if (p.rank == 0 && p.channel == pfs::Channel::Write) {
      starts.push_back(p.ts);
    }
  }
  const auto from_events = ftio.analyzeEvents(starts);
  std::printf("\nphase-start cadence (rank 0, %zu events):\n", starts.size());
  std::printf("  periodic: %s, period %.2f s, confidence %.2f\n",
              from_events.periodic ? "yes" : "no", from_events.period,
              from_events.confidence);
  if (from_events.periodic && !starts.empty()) {
    std::printf("  next burst predicted at t=%.2f s\n",
                tmio::FtioAnalyzer::predictNext(from_events, starts.back()));
  }
  return 0;
}
