// Cluster contention demo (a small version of the paper's Fig. 1 scenario):
// several synchronous-I/O jobs compete with one asynchronous-I/O job for a
// shared PFS; limiting the async job to its required bandwidth during
// contention frees bandwidth for everyone else.
//
//   $ ./cluster_contention [limit|nolimit]
#include <cstdio>
#include <string>

#include "cluster/cluster.hpp"
#include "util/ascii_chart.hpp"

using namespace iobts;

int main(int argc, char** argv) {
  const bool limit = argc < 2 || std::string(argv[1]) != "nolimit";

  sim::Simulation sim;
  cluster::ClusterConfig config;
  config.nodes = 64;
  config.pfs.read_capacity = 12e9;
  config.pfs.write_capacity = 12e9;
  cluster::Cluster cl(sim, config);

  // Three sync jobs whose runtime depends directly on bandwidth, plus one
  // async job that can flatten its bursts.
  std::vector<cluster::JobId> ids;
  for (int i = 0; i < 3; ++i) {
    cluster::JobSpec spec;
    spec.name = "sync" + std::to_string(i);
    spec.nodes = 12;
    spec.io = cluster::JobIo::Sync;
    spec.loops = 5;
    spec.compute_seconds = 1.5 + 0.7 * i;  // de-phased compute
    spec.write_bytes_per_node = 4 * kGB;   // I/O-bound: writes dominate
    ids.push_back(cl.submit(spec));
  }
  // Wide but I/O-light: its node-proportional fair share (28/64 of the
  // link) far exceeds the ~1.4 GB/s it actually needs to hide its writes.
  cluster::JobSpec async_spec;
  async_spec.name = "async";
  async_spec.nodes = 28;
  async_spec.io = cluster::JobIo::Async;
  async_spec.loops = 4;
  async_spec.compute_seconds = 20.0;
  async_spec.write_bytes_per_node = 1 * kGB;
  const auto async_id = cl.submit(async_spec);
  ids.push_back(async_id);

  if (limit) cl.enableContentionLimiting(async_id, 1.2, 0.25);

  cl.start();
  sim.run();

  std::printf("scenario: %s\n\n", limit ? "async job limited during contention"
                                        : "no restrictions");
  double t_end = 0.0;
  for (const auto id : ids) t_end = std::max(t_end, cl.result(id).end);
  GanttChart gantt(70, t_end);
  gantt.setTitle("Job timelines");
  for (const auto id : ids) {
    gantt.addRow(cl.spec(id).name, cl.result(id).start, cl.result(id).end);
  }
  std::printf("%s\n", gantt.render().c_str());

  LineChart chart(90, 14);
  chart.setTitle("Total PFS write bandwidth (GB/s)");
  auto pts = cl.link().totalRateSeries(pfs::Channel::Write)
                 .resample(0.0, t_end, 90);
  for (auto& [t, v] : pts) v /= 1e9;
  chart.addSeries("total", pts);
  std::printf("%s\n", chart.render().c_str());
  return 0;
}
