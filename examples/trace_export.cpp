// Trace export walkthrough: run a traced asynchronous-I/O workload, dump a
// Perfetto-loadable Chrome trace plus a unified metrics table, and
// cross-check the trace against the link's own resolve counters.
//
//   $ ./trace_export [RUN_DIR]          # default: trace_export.out/
//   $ ./tools/trace_summarize trace_export.out/trace.json
//   $ ./tools/trace_summarize trace_export.out/trace.json --journeys
//
// Everything lands in one run directory (created if needed) instead of
// littering the invoking directory. Load trace.json in
// https://ui.perfetto.dev (or
// chrome://tracing) and enable flow arrows: each I/O request is one
// "journey" — an arrow chain from the ADIO queue span through its paced
// subrequests into the shared-link settle and back to the completion.
// The sink is installed *before* the instrumented components are
// constructed so their setup-time track names land in the trace metadata;
// everything the components record afterwards is derived purely from
// virtual time and stable simulation ids, so rerunning this example
// produces a byte-identical trace file. A TraceStreamer mirrors the run
// into a second, incrementally-written file to show that streaming export
// produces the same loadable document without retaining the whole ring.
#include <cstdio>
#include <filesystem>
#include <string>

#include "fault/plan.hpp"
#include "mpisim/world.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"
#include "pfs/file_store.hpp"
#include "pfs/shared_link.hpp"
#include "tmio/obs_bridge.hpp"
#include "tmio/tracer.hpp"
#include "util/units.hpp"

using namespace iobts;

namespace {

/// Same shape as quickstart: 8 loops of [iwrite 32 MB] [compute 2 s] [wait].
sim::Task<void> application(mpisim::RankCtx& ctx) {
  auto file = ctx.open("/pfs/trace_export.out." + std::to_string(ctx.rank()));
  mpisim::Request pending;
  for (int loop = 0; loop < 8; ++loop) {
    if (pending.valid()) co_await ctx.wait(pending);
    pending = co_await file.iwriteAt(0, 32 * kMB, /*tag=*/loop + 1);
    co_await ctx.compute(2.0);
  }
  co_await ctx.wait(pending);
}

}  // namespace

int main(int argc, char** argv) {
  // 0. One run directory for every artifact this example writes.
  const std::string run_dir = argc > 1 ? argv[1] : "trace_export.out";
  std::error_code ec;
  std::filesystem::create_directories(run_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create run directory %s: %s\n",
                 run_dir.c_str(), ec.message().c_str());
    return 1;
  }

  // 1. Install the sink first. Everything below is traced. The streamer
  // drains the ring into a file as the run progresses (at the default
  // half-occupancy watermark), so the streamed copy never needs the whole
  // history resident.
  obs::TraceSink sink;  // default: 65536 events, no wall-clock capture
  const std::string streamed_path = run_dir + "/streamed.json";
  obs::TraceStreamer streamer(sink, streamed_path);
  obs::ScopedTraceSink install(sink);

  sim::Simulation sim;

  pfs::LinkConfig link_cfg;
  link_cfg.read_capacity = 10e9;
  link_cfg.write_capacity = 10e9;
  pfs::SharedLink link(sim, link_cfg);
  pfs::FileStore store;

  // A degradation window in the middle of the run makes the trace
  // interesting: watch the per-stream transfer spans stretch while the
  // "fault" instants mark the planned and applied window edges.
  fault::FaultPlan plan(/*seed=*/42);
  plan.degradeChannel(pfs::Channel::Write, /*factor=*/0.25,
                      {/*begin=*/6.0, /*end=*/10.0});
  link.installFaultPlan(plan);

  tmio::TracerConfig tracer_cfg;
  tracer_cfg.strategy = tmio::StrategyKind::UpOnly;
  tracer_cfg.params.tolerance = 1.1;
  tmio::Tracer tracer(tracer_cfg);

  mpisim::WorldConfig world_cfg;
  world_cfg.ranks = 4;
  mpisim::World world(sim, link, store, world_cfg, &tracer);
  tracer.attach(world);

  world.launch(application);
  sim.run();

  std::printf("run finished in %.2f virtual seconds\n", world.elapsed());
  std::printf("trace: %zu events retained, %llu recorded, %llu dropped\n",
              sink.size(),
              static_cast<unsigned long long>(sink.recorded()),
              static_cast<unsigned long long>(sink.dropped()));

  // 2. Cross-check: the trace must agree with the link's own counters.
  const auto write_stats = link.resolveStats(pfs::Channel::Write);
  std::uint64_t resolve_spans = 0;
  std::uint64_t skip_instants = 0;
  for (const obs::TraceEvent& ev : sink.snapshot()) {
    if (ev.pid != obs::track::kLink) continue;
    if (ev.tid != static_cast<std::uint32_t>(pfs::Channel::Write)) continue;
    const std::string_view name = ev.name;
    if (name == "resolve") ++resolve_spans;
    if (name == "resolve.skip") ++skip_instants;
  }
  std::printf(
      "write channel: %llu resolve spans (link says %llu executed), "
      "%llu skip instants (link says %llu skipped)\n",
      static_cast<unsigned long long>(resolve_spans),
      static_cast<unsigned long long>(write_stats.executed),
      static_cast<unsigned long long>(skip_instants),
      static_cast<unsigned long long>(write_stats.lazy_skipped));

  // 3. Journeys: each request's flow chain starts with one "s" event.
  std::uint64_t journey_starts = 0;
  for (const obs::TraceEvent& ev : sink.snapshot()) {
    if (ev.phase == obs::Phase::FlowStart) ++journey_starts;
  }
  std::printf(
      "%llu request journeys in the trace (follow the flow arrows in "
      "Perfetto, or run trace_summarize --journeys)\n",
      static_cast<unsigned long long>(journey_starts));

  // 4. Annotate the trace with the tracer's Eq. 3 application-level
  // required-bandwidth series, then collect every layer's metrics --
  // including the tmio bandwidth aggregates and the sink's own span
  // histograms -- into one registry.
  tmio::annotateAppRequired(tracer, sink);
  obs::MetricsRegistry metrics;
  sim.exportMetrics(metrics);
  link.exportMetrics(metrics);
  world.exportMetrics(metrics);
  tmio::exportTracerMetrics(tracer, metrics);
  sink.exportMetrics(metrics);

  // 5. Export: the one-shot document first (it snapshots the ring), then
  // close the streamer, which drains the remaining events into the
  // incrementally-written copy.
  const std::string trace_path = run_dir + "/trace.json";
  const std::string metrics_path = run_dir + "/metrics.txt";
  if (!obs::writeChromeTrace(sink, trace_path) ||
      !obs::writeMetrics(metrics, metrics_path)) {
    std::fprintf(stderr, "export failed\n");
    return 1;
  }
  if (!streamer.close()) {
    std::fprintf(stderr, "streaming export failed\n");
    return 1;
  }
  std::printf("\nwrote %s (load it in ui.perfetto.dev)\n", trace_path.c_str());
  std::printf("wrote %s (streamed copy: %llu events in %llu batches)\n",
              streamed_path.c_str(),
              static_cast<unsigned long long>(streamer.events()),
              static_cast<unsigned long long>(streamer.batches()));
  std::printf("wrote %s:\n\n%s", metrics_path.c_str(),
              metrics.dumpText().c_str());
  return 0;
}
