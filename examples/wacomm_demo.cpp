// WaComM++ demo: the paper's Sec. VI-A workload (Lagrangian pollutant
// transport with per-iteration asynchronous particle writes), with and
// without TMIO's bandwidth limiting.
//
//   $ ./wacomm_demo [strategy] [ranks]
#include <cstdio>
#include <string>

#include "mpisim/world.hpp"
#include "tmio/report.hpp"
#include "tmio/tracer.hpp"
#include "util/ascii_chart.hpp"
#include "workloads/wacomm.hpp"

using namespace iobts;

int main(int argc, char** argv) {
  const std::string strategy_name = argc > 1 ? argv[1] : "up-only";
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 24;

  sim::Simulation sim;
  pfs::SharedLink link(sim, pfs::LinkConfig{});
  pfs::FileStore store;

  tmio::TracerConfig tracer_cfg;
  tracer_cfg.strategy = tmio::parseStrategy(strategy_name);
  tracer_cfg.params.tolerance = 1.1;
  tmio::Tracer tracer(tracer_cfg);

  mpisim::WorldConfig world_cfg;
  world_cfg.ranks = ranks;
  world_cfg.compute_jitter_sigma = 0.05;  // mild load imbalance
  mpisim::World world(sim, link, store, world_cfg, &tracer);
  tracer.attach(world);

  workloads::WacommConfig wacomm;  // 2e5 particles, 50 hourly iterations
  world.launch(workloads::wacommProgram(wacomm));
  sim.run();

  std::printf("WaComM++, %d ranks, strategy=%s: %.2f virtual s\n\n", ranks,
              strategy_name.c_str(), world.elapsed());

  const tmio::ExploitBreakdown e = tmio::exploitBreakdown(tracer, world);
  StackedBars bars(50);
  bars.setTitle("Time distribution (percent of aggregate rank time)");
  bars.setSegments({"sync w", "lost", "exploit", "compute"});
  bars.addBar(strategy_name, {e.sync_write + e.sync_read,
                              e.async_write_lost + e.async_read_lost,
                              e.async_write_exploit + e.async_read_exploit,
                              e.compute_io_free});
  std::printf("%s\n", bars.render().c_str());

  std::printf("minimal application-level required bandwidth: %s\n",
              formatBandwidth(tracer.minimalRequiredBandwidth()).c_str());
  std::printf("write phases traced: %zu, limit changes: %zu\n",
              tracer.phaseRecords().size(), tracer.limitChanges().size());
  return 0;
}
