// Quickstart: trace an application's asynchronous-I/O bandwidth requirement
// and let TMIO throttle it automatically.
//
//   $ ./quickstart
//
// The "application" below is the canonical pattern of the paper's Fig. 3:
// every loop submits an asynchronous write, computes, and only then waits on
// the write. TMIO (the Tracer) observes the MPI-IO traffic through the
// PMPI-style hooks, computes the required bandwidth B (Eq. 1) at every
// matching wait, and limits the next phase's I/O to B * tol with the up-only
// strategy -- no changes to the application code.
#include <cstdio>

#include "mpisim/world.hpp"
#include "pfs/file_store.hpp"
#include "pfs/shared_link.hpp"
#include "tmio/report.hpp"
#include "tmio/tracer.hpp"
#include "util/units.hpp"

using namespace iobts;

namespace {

/// The application: 8 loops of [iwrite 32 MB] [compute 2 s] [wait].
sim::Task<void> application(mpisim::RankCtx& ctx) {
  auto file = ctx.open("/pfs/quickstart.out." + std::to_string(ctx.rank()));
  mpisim::Request pending;
  for (int loop = 0; loop < 8; ++loop) {
    if (pending.valid()) co_await ctx.wait(pending);
    pending = co_await file.iwriteAt(0, 32 * kMB, /*tag=*/loop + 1);
    co_await ctx.compute(2.0);
  }
  co_await ctx.wait(pending);
}

}  // namespace

int main() {
  sim::Simulation sim;

  // The shared PFS: 10 GB/s on each channel.
  pfs::LinkConfig link_cfg;
  link_cfg.read_capacity = 10e9;
  link_cfg.write_capacity = 10e9;
  pfs::SharedLink link(sim, link_cfg);
  pfs::FileStore store;

  // TMIO with the up-only strategy, tol = 1.1 (the paper's Fig. 9 setting).
  tmio::TracerConfig tracer_cfg;
  tracer_cfg.strategy = tmio::StrategyKind::UpOnly;
  tracer_cfg.params.tolerance = 1.1;
  tmio::Tracer tracer(tracer_cfg);

  // Four MPI ranks; the tracer is "preloaded" by registering it as hooks.
  mpisim::WorldConfig world_cfg;
  world_cfg.ranks = 4;
  mpisim::World world(sim, link, store, world_cfg, &tracer);
  tracer.attach(world);

  world.launch(application);
  sim.run();

  std::printf("run finished in %.2f virtual seconds\n\n", world.elapsed());
  std::printf("%-6s %-6s %-14s %-14s %-14s\n", "rank", "phase", "B (req.)",
              "window", "limit applied");
  for (const auto& phase : tracer.phaseRecords()) {
    std::printf("%-6d %-6d %-14s %-14s %-14s\n", phase.rank, phase.phase,
                formatBandwidth(phase.required).c_str(),
                formatDuration(phase.te - phase.ts).c_str(),
                phase.applied_limit
                    ? formatBandwidth(*phase.applied_limit).c_str()
                    : "-");
  }

  std::printf("\napplication-level minimal required bandwidth (Eq. 3): %s\n",
              formatBandwidth(tracer.minimalRequiredBandwidth()).c_str());
  std::printf("async write exploit: %.1f %% of aggregate rank time\n",
              tmio::asyncWriteExploitPercent(tracer, world));
  std::printf("peak write throughput on the link: %s (capacity %s)\n",
              formatBandwidth(
                  link.totalRateSeries(pfs::Channel::Write).maxValue())
                  .c_str(),
              formatBandwidth(link.capacity(pfs::Channel::Write)).c_str());
  return 0;
}
