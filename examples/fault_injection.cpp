// Fault-injection demo: the same HACC-IO-like job run twice under an
// identical fault plan -- a degraded-bandwidth window that also throws
// transient EIO-style faults, plus a short full blackout.
//
// The synchronous twin has no retry budget: the first faulted write kills
// the rank, the paper's worst case for tightly coupled bulk-synchronous
// apps. The asynchronous twin retries faulted transfers in its I/O thread
// (bounded exponential backoff, banked as pacing deficit) and rides the
// window out: the job survives, merely paying some extra wait time.
//
//   $ ./fault_injection
#include <cstdio>
#include <string>

#include "fault/plan.hpp"
#include "mpisim/world.hpp"
#include "util/ascii_chart.hpp"

using namespace iobts;

namespace {

constexpr int kRanks = 4;
constexpr int kLoops = 5;
constexpr Bytes kWritePerLoop = 200 * kMB;  // 0.8 s at the 4-way fair share
constexpr Seconds kCompute = 2.0;

fault::FaultPlan makePlan() {
  fault::FaultPlan plan(/*seed=*/2024);
  // A six-second brownout: the PFS delivers a quarter of its bandwidth and
  // fails 70 % of the transfers completing inside the window...
  plan.degradeChannel(pfs::Channel::Write, 0.25, {6.0, 12.0});
  plan.addTransferFault({.channel = pfs::Channel::Write,
                         .window = {6.0, 12.0},
                         .probability = 0.7});
  // ...followed by a short full outage (transfers stall, nothing fails).
  plan.addBlackout({14.0, 15.0});
  return plan;
}

struct TwinOutcome {
  Seconds elapsed = 0.0;
  int failed_ranks = 0;
  mpisim::AdioEngine::Stats io;
  StepSeries write_rate;  // total PFS write bandwidth over time
};

// One twin = its own simulation + PFS + world, so the comparison is clean.
TwinOutcome runTwin(bool async_io, const throttle::RetryPolicy& retry) {
  sim::Simulation sim;
  pfs::LinkConfig link_cfg;
  link_cfg.read_capacity = 1e9;
  link_cfg.write_capacity = 1e9;
  pfs::SharedLink link(sim, link_cfg);
  const fault::FaultPlan plan = makePlan();
  link.installFaultPlan(plan);
  pfs::FileStore store;

  mpisim::WorldConfig cfg;
  cfg.ranks = kRanks;
  cfg.retry = retry;
  mpisim::World world(sim, link, store, cfg);
  world.launch([async_io](mpisim::RankCtx& ctx) -> sim::Task<void> {
    auto file = ctx.open("/pfs/ckpt." + std::to_string(ctx.rank()));
    mpisim::Request pending;
    for (int loop = 0; loop < kLoops; ++loop) {
      co_await ctx.compute(kCompute);
      if (pending.valid()) {
        co_await ctx.wait(pending);
        if (pending.failed()) throw mpisim::IoFailure(pending.info());
        pending = {};
      }
      const Bytes offset = static_cast<Bytes>(loop) * kWritePerLoop;
      if (async_io) {
        pending = co_await file.iwriteAt(offset, kWritePerLoop, loop + 1);
      } else {
        co_await file.writeAt(offset, kWritePerLoop, loop + 1);
      }
    }
    if (pending.valid()) {
      co_await ctx.wait(pending);
      if (pending.failed()) throw mpisim::IoFailure(pending.info());
    }
  });
  sim.run();

  TwinOutcome out;
  out.elapsed = world.elapsed();
  out.failed_ranks = world.failedRanks();
  out.io = world.ioStats();
  out.write_rate = link.totalRateSeries(pfs::Channel::Write);
  return out;
}

}  // namespace

int main() {
  // The sync twin fails fast (default policy: zero retries); the async twin
  // gets the bounded-backoff budget its background I/O thread can afford.
  throttle::RetryPolicy retry;
  retry.max_retries = 8;
  retry.base_backoff = 0.25;
  retry.multiplier = 2.0;
  retry.max_backoff = 2.0;

  const TwinOutcome sync_twin = runTwin(/*async_io=*/false, {});
  const TwinOutcome async_twin = runTwin(/*async_io=*/true, retry);

  std::printf(
      "Fault plan (both twins): write bandwidth x0.25 during [6,12) s,\n"
      "70%% transient EIO faults in the same window, blackout [14,15) s.\n\n");

  std::printf("sync twin : %d/%d ranks failed after %llu unrecoverable "
              "fault%s (no retry budget)\n",
              sync_twin.failed_ranks, kRanks,
              static_cast<unsigned long long>(sync_twin.io.failures),
              sync_twin.io.failures == 1 ? "" : "s");
  std::printf("async twin: %s in %.1f s -- %llu transfer retr%s absorbed "
              "by the I/O thread, %llu failures\n\n",
              async_twin.failed_ranks == 0 ? "survived" : "FAILED",
              async_twin.elapsed,
              static_cast<unsigned long long>(async_twin.io.retries),
              async_twin.io.retries == 1 ? "y" : "ies",
              static_cast<unsigned long long>(async_twin.io.failures));

  LineChart chart(90, 12);
  chart.setTitle("Async twin: total PFS write bandwidth (GB/s)");
  auto pts = async_twin.write_rate.resample(0.0, async_twin.elapsed, 90);
  for (auto& [t, v] : pts) v /= 1e9;
  chart.addSeries("write", pts);
  std::printf("%s\n", chart.render().c_str());
  return 0;
}
