// Online metric streaming demo: TMIO publishes every record over a real TCP
// socket while the simulation runs; a consumer thread receives them live
// (the paper's ZeroMQ path, here with plain sockets).
//
//   $ ./online_metrics
#include <cstdio>

#include "mpisim/world.hpp"
#include "tmio/publisher.hpp"
#include "tmio/tracer.hpp"
#include "workloads/hacc_io.hpp"

using namespace iobts;

int main() {
  // Consumer: a loopback JSONL server standing in for an I/O scheduler that
  // ingests required-bandwidth reports.
  tmio::TcpJsonlServer server;
  std::printf("consumer listening on 127.0.0.1:%d\n", server.port());

  tmio::MetricsPublisher publisher;
  publisher.addSink(
      std::make_unique<tmio::TcpJsonlSink>("127.0.0.1", server.port()));

  sim::Simulation sim;
  pfs::SharedLink link(sim, pfs::LinkConfig{});
  pfs::FileStore store;
  tmio::TracerConfig tcfg;
  tcfg.strategy = tmio::StrategyKind::UpOnly;
  tcfg.publisher = &publisher;
  tmio::Tracer tracer(tcfg);
  mpisim::WorldConfig wcfg;
  wcfg.ranks = 8;
  mpisim::World world(sim, link, store, wcfg, &tracer);
  tracer.attach(world);

  workloads::HaccIoConfig hacc;
  hacc.particles_per_rank = 200'000;
  hacc.loops = 4;
  world.launch(workloads::haccIoProgram(hacc));
  sim.run();

  server.waitForLines(tracer.phaseRecords().size());
  const auto lines = server.lines();
  std::printf("consumer received %zu records; first three:\n", lines.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(3, lines.size()); ++i) {
    std::printf("  %s\n", lines[i].c_str());
  }
  return 0;
}
