// HACC-IO demo: run the modified (asynchronous) HACC-IO benchmark under a
// chosen limiting strategy and show the time distribution plus the T/B/B_L
// bandwidth series.
//
//   $ ./hacc_io_demo [strategy] [ranks]
//     strategy: none | direct | up-only | adaptive   (default: direct)
//     ranks:    MPI ranks to simulate                 (default: 16)
#include <cstdio>
#include <string>

#include "mpisim/world.hpp"
#include "tmio/report.hpp"
#include "tmio/tracer.hpp"
#include "util/ascii_chart.hpp"
#include "workloads/hacc_io.hpp"

using namespace iobts;

int main(int argc, char** argv) {
  const std::string strategy_name = argc > 1 ? argv[1] : "direct";
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 16;

  sim::Simulation sim;
  pfs::LinkConfig link_cfg;  // Lichtenberg: 106 GB/s write, 120 GB/s read
  pfs::SharedLink link(sim, link_cfg);
  pfs::FileStore store;

  tmio::TracerConfig tracer_cfg;
  tracer_cfg.strategy = tmio::parseStrategy(strategy_name);
  tracer_cfg.params.tolerance = 1.1;
  tmio::Tracer tracer(tracer_cfg);

  mpisim::WorldConfig world_cfg;
  world_cfg.ranks = ranks;
  mpisim::World world(sim, link, store, world_cfg, &tracer);
  tracer.attach(world);

  workloads::HaccIoConfig hacc;  // paper defaults: 1e6 particles, 10 loops
  workloads::HaccIoStats stats;
  world.launch(workloads::haccIoProgram(hacc, &stats));
  sim.run();

  std::printf("HACC-IO, %d ranks, strategy=%s: %.2f virtual s, "
              "%ld loops verified, %ld failures\n\n",
              ranks, strategy_name.c_str(), world.elapsed(),
              stats.verified_loops, stats.verify_failures);

  const tmio::ExploitBreakdown e = tmio::exploitBreakdown(tracer, world);
  StackedBars bars(50);
  bars.setTitle("Time distribution (percent of aggregate rank time)");
  bars.setSegments({"sync", "lost", "exploit", "compute"});
  bars.addBar(strategy_name,
              {e.sync_write + e.sync_read,
               e.async_write_lost + e.async_read_lost,
               e.async_write_exploit + e.async_read_exploit,
               e.compute_io_free});
  std::printf("%s\n", bars.render().c_str());

  LineChart chart(90, 16);
  chart.setTitle("Write-channel transfer rates over time (MB/s)");
  auto scale = [](const StepSeries& s, double t_end) {
    auto pts = s.resample(0.0, t_end, 90);
    for (auto& [t, v] : pts) v /= 1e6;
    return pts;
  };
  const double t_end = world.elapsed();
  chart.addSeries("T", scale(tracer.appThroughputSeries(pfs::Channel::Write),
                             t_end));
  chart.addSeries("B", scale(tracer.appRequiredSeries(pfs::Channel::Write),
                             t_end));
  if (tracer_cfg.strategy != tmio::StrategyKind::None) {
    chart.addSeries("B_L",
                    scale(tracer.appLimitSeries(pfs::Channel::Write), t_end));
  }
  chart.setXLabel("time (s)");
  std::printf("%s\n", chart.render().c_str());

  if (tracer.firstLimitTime() >= 0.0) {
    std::printf("limit first applied at t=%.2f s\n", tracer.firstLimitTime());
  }
  return 0;
}
